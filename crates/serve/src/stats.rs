//! Latency/throughput accounting for the batch server.
//!
//! Each `(model, scenario)` registration owns one [`StatsCollector`]; the
//! dispatcher records a sample per request (enqueue → response, i.e. queue
//! wait plus batch execution). Snapshots expose count, mean and p50/p99
//! tail latency plus the backpressure counters the admission-control
//! layer feeds (accepted submissions, shed requests, queue-depth
//! high-water mark) — the numbers `BENCH_serve.json` reports.

use std::sync::Mutex;
use std::time::Duration;

/// Samples kept per collector before reservoir-thinning kicks in: beyond
/// this, every second sample is dropped and subsequent samples are
/// recorded at half the rate (repeatedly, so memory stays bounded at
/// ~`MAX_SAMPLES` regardless of traffic volume).
const MAX_SAMPLES: usize = 1 << 16;

/// Point-in-time summary of one registration's latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSnapshot {
    /// Requests completed (all of them, independent of sample thinning).
    pub count: u64,
    /// Mean latency in seconds (over all completed requests).
    pub mean_s: f64,
    /// Median latency in seconds (over retained samples).
    pub p50_s: f64,
    /// 99th-percentile latency in seconds (over retained samples).
    pub p99_s: f64,
    /// Requests admitted into the queue (accepted submissions).
    pub submitted: u64,
    /// Requests refused at admission because the registration's queue cap
    /// was reached ([`crate::server::ServeError::Rejected`]).
    pub shed: u64,
    /// Largest queue depth observed at any admission, including the
    /// admitted request itself — the backpressure high-water mark.
    pub max_queue_depth: usize,
}

impl StatsSnapshot {
    /// An all-zero snapshot (no traffic yet).
    pub fn empty() -> Self {
        StatsSnapshot {
            count: 0,
            mean_s: 0.0,
            p50_s: 0.0,
            p99_s: 0.0,
            submitted: 0,
            shed: 0,
            max_queue_depth: 0,
        }
    }
}

#[derive(Default)]
struct StatsState {
    samples: Vec<f64>,
    /// Record every `2^thin_shift`-th sample (doubles at each thinning).
    thin_shift: u32,
    seen_since_kept: u64,
    count: u64,
    sum_s: f64,
    submitted: u64,
    shed: u64,
    max_queue_depth: usize,
}

/// Thread-safe latency accumulator with bounded memory.
#[derive(Default)]
pub struct StatsCollector {
    state: Mutex<StatsState>,
}

impl StatsCollector {
    /// Records one completed request's latency.
    pub fn record(&self, latency: Duration) {
        let secs = latency.as_secs_f64();
        let mut st = self.state.lock().expect("stats poisoned");
        st.count += 1;
        st.sum_s += secs;
        st.seen_since_kept += 1;
        if st.seen_since_kept >= (1u64 << st.thin_shift) {
            st.seen_since_kept = 0;
            st.samples.push(secs);
            if st.samples.len() >= MAX_SAMPLES {
                // Thin: keep every second retained sample, halve the
                // future retention rate.
                let mut keep = false;
                st.samples.retain(|_| {
                    keep = !keep;
                    keep
                });
                st.thin_shift += 1;
            }
        }
    }

    /// Records one admitted submission and the queue depth it observed
    /// (including itself). Fed by the server's admission check.
    pub fn record_enqueue(&self, depth: usize) {
        let mut st = self.state.lock().expect("stats poisoned");
        st.submitted += 1;
        st.max_queue_depth = st.max_queue_depth.max(depth);
    }

    /// Records one request refused at admission (queue cap reached).
    pub fn record_shed(&self) {
        self.state.lock().expect("stats poisoned").shed += 1;
    }

    /// Summarizes the samples recorded so far.
    pub fn snapshot(&self) -> StatsSnapshot {
        let st = self.state.lock().expect("stats poisoned");
        let mut sorted = st.samples.clone();
        sorted.sort_by(f64::total_cmp);
        StatsSnapshot {
            count: st.count,
            mean_s: if st.count == 0 {
                0.0
            } else {
                st.sum_s / st.count as f64
            },
            p50_s: percentile(&sorted, 50.0),
            p99_s: percentile(&sorted, 99.0),
            submitted: st.submitted,
            shed: st.shed,
            max_queue_depth: st.max_queue_depth,
        }
    }
}

impl std::fmt::Debug for StatsCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("StatsCollector")
            .field("count", &snap.count)
            .field("mean_s", &snap.mean_s)
            .finish()
    }
}

/// Nearest-rank percentile of an **ascending-sorted** slice: the smallest
/// element with at least `q`% of the data at or below it. Monotone in `q`
/// by construction; returns 0.0 on an empty slice.
///
/// `vendor/criterion` carries an intentional copy of this function (the
/// offline stub must stay dependency-free); keep the rank rule in sync so
/// "p99" means the same thing in every JSON artifact.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_monotone_and_bounded() {
        let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
        let mut prev = f64::NEG_INFINITY;
        for q in 0..=100 {
            let p = percentile(&sorted, f64::from(q));
            assert!(p >= prev, "percentile must be monotone in q");
            assert!((1.0..=100.0).contains(&p));
            prev = p;
        }
        assert_eq!(percentile(&sorted, 50.0), 50.0);
        assert_eq!(percentile(&sorted, 99.0), 99.0);
        assert_eq!(percentile(&sorted, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 1.0), 7.5);
    }

    #[test]
    fn snapshot_reports_mean_and_tails() {
        let c = StatsCollector::default();
        for ms in [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 100] {
            c.record(Duration::from_millis(ms));
        }
        let s = c.snapshot();
        assert_eq!(s.count, 10);
        assert!((s.mean_s - 0.0145).abs() < 1e-9, "mean {}", s.mean_s);
        assert!(s.p50_s <= s.p99_s, "percentiles must be ordered");
        assert!((s.p99_s - 0.1).abs() < 1e-9, "p99 captures the outlier");
    }

    #[test]
    fn backpressure_counters_accumulate() {
        let c = StatsCollector::default();
        assert_eq!(c.snapshot(), StatsSnapshot::empty());
        c.record_enqueue(3);
        c.record_enqueue(7);
        c.record_enqueue(2);
        c.record_shed();
        c.record_shed();
        let s = c.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.shed, 2);
        assert_eq!(s.max_queue_depth, 7, "high-water mark, not last depth");
        // Sheds alone (nothing completed) must not fake latency numbers.
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_s, 0.0);
    }

    #[test]
    fn thinning_bounds_memory_but_keeps_count() {
        let c = StatsCollector::default();
        let n = (MAX_SAMPLES * 2 + 123) as u64;
        for _ in 0..n {
            c.record(Duration::from_micros(10));
        }
        let s = c.snapshot();
        assert_eq!(s.count, n);
        let retained = c.state.lock().unwrap().samples.len();
        assert!(retained < MAX_SAMPLES, "retained {retained}");
        assert!((s.p50_s - 1e-5).abs() < 1e-9);
    }
}
