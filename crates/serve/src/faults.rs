//! Deterministic fault injection for the serving stack.
//!
//! Robustness claims ("a panicking batch function fails only its own
//! requests", "the pool survives a crashing worker", "latency spikes
//! degrade tails, not correctness") are only claims until the failure
//! paths actually run. This module injects three fault classes at two
//! sites of the request path, on demand:
//!
//! * **Panics** — `infer_fault` fires *inside* the server's dispatch
//!   closure immediately before the batch function, exercising the
//!   catch-unwind → `InferenceFailed` fan-out (exactly-one-completion);
//!   `worker_panic` fires on a pool worker *after* a task completes,
//!   exercising worker survival without ever dropping a task.
//! * **Added latency** — `infer_fault` and `worker_delay` sleep for
//!   a configured duration, inflating the service stage (which also
//!   feeds the overload predictor, so predictive shedding can be tested
//!   under induced slowness).
//! * **Malformed batches** — `take_malform` tells the dispatch path to
//!   truncate the batch output vector, exercising the length-mismatch →
//!   `InferenceFailed` arm.
//!
//! ## Gating
//!
//! Injection is **off by default** and zero-cost when off: every hook
//! starts with one relaxed load of a `OnceLock`'d `AtomicBool` — the
//! same pattern as `SERVE_TRACE` ([`crate::trace`]). The `SERVE_FAULTS`
//! environment variable (any non-empty value other than `"0"`) enables
//! it at startup, reading the plan from the `SERVE_FAULT_*` variables;
//! [`set_enabled`] and [`configure`] drive it at runtime (the chaos
//! suite uses these to flip faults on and off around assertions).
//!
//! ## Determinism
//!
//! Faults fire on **every-Nth-hit counters**, not randomness: a plan
//! with `infer_panic_every = 3` panics on exactly the 3rd, 6th, 9th …
//! infer dispatch after the counters were last [`reset`]. Tests can
//! therefore assert exact outcomes, and the [`stats`] counters report
//! how many faults of each class actually fired.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable that enables fault injection at startup (any
/// non-empty value other than `"0"`).
pub const FAULTS_ENV: &str = "SERVE_FAULTS";
/// Panic before every Nth batch-function call (0 = never).
pub const INFER_PANIC_ENV: &str = "SERVE_FAULT_PANIC_EVERY";
/// Sleep this many microseconds at every Nth batch-function call.
pub const INFER_DELAY_US_ENV: &str = "SERVE_FAULT_DELAY_US";
/// Which batch-function calls the delay applies to (0 = never).
pub const INFER_DELAY_EVERY_ENV: &str = "SERVE_FAULT_DELAY_EVERY";
/// Truncate the output of every Nth batch (0 = never).
pub const MALFORM_ENV: &str = "SERVE_FAULT_MALFORM_EVERY";
/// Panic on a pool worker after every Nth completed task (0 = never).
pub const WORKER_PANIC_ENV: &str = "SERVE_FAULT_WORKER_PANIC_EVERY";

/// What to inject and how often. All cadences are "every Nth hit" with
/// 0 meaning never; see the module docs for the exact sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Panic immediately before every Nth batch-function call.
    pub infer_panic_every: u64,
    /// Latency added at every `infer_delay_every`-th batch-function
    /// call.
    pub infer_delay: Duration,
    /// Cadence for `infer_delay` (0 = never).
    pub infer_delay_every: u64,
    /// Truncate the output vector of every Nth successful batch,
    /// forcing the length-mismatch failure path.
    pub malform_every: u64,
    /// Panic on the pool worker after every Nth completed task (the
    /// task itself has already finished — this tests worker survival,
    /// not request loss).
    pub worker_panic_every: u64,
    /// Latency added on the worker before every
    /// `worker_delay_every`-th task.
    pub worker_delay: Duration,
    /// Cadence for `worker_delay` (0 = never).
    pub worker_delay_every: u64,
}

/// How many faults of each class have fired since the last [`reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Panics injected before batch functions.
    pub infer_panics: u64,
    /// Delays injected before batch functions.
    pub infer_delays: u64,
    /// Batch outputs truncated.
    pub malformed: u64,
    /// Panics injected on pool workers.
    pub worker_panics: u64,
    /// Delays injected on pool workers.
    pub worker_delays: u64,
}

/// All mutable injection state: the plan (as atomics, so hooks read it
/// without a lock), the per-site hit counters the cadences run on, and
/// the fired-fault counters.
#[derive(Default)]
struct State {
    infer_panic_every: AtomicU64,
    infer_delay_ns: AtomicU64,
    infer_delay_every: AtomicU64,
    malform_every: AtomicU64,
    worker_panic_every: AtomicU64,
    worker_delay_ns: AtomicU64,
    worker_delay_every: AtomicU64,
    // Hit counters (one per site; malform shares the infer site).
    infer_hits: AtomicU64,
    malform_hits: AtomicU64,
    worker_hits: AtomicU64,
    // Fired counters.
    infer_panics: AtomicU64,
    infer_delays: AtomicU64,
    malformed: AtomicU64,
    worker_panics: AtomicU64,
    worker_delays: AtomicU64,
}

fn state() -> &'static State {
    static STATE: OnceLock<State> = OnceLock::new();
    STATE.get_or_init(|| {
        let st = State::default();
        // Startup plan from the environment (only consulted once; the
        // runtime API overwrites it).
        let env_u64 = |key: &str| {
            std::env::var(key)
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0)
        };
        st.infer_panic_every
            .store(env_u64(INFER_PANIC_ENV), Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
        st.infer_delay_ns
            .store(env_u64(INFER_DELAY_US_ENV) * 1_000, Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
        st.infer_delay_every
            .store(env_u64(INFER_DELAY_EVERY_ENV), Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
        st.malform_every
            .store(env_u64(MALFORM_ENV), Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
        st.worker_panic_every
            .store(env_u64(WORKER_PANIC_ENV), Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
        st
    })
}

/// The shared enabled flag: initialized once from [`FAULTS_ENV`], then
/// flippable at runtime ([`set_enabled`]).
fn flag() -> &'static AtomicBool {
    static FLAG: OnceLock<AtomicBool> = OnceLock::new();
    FLAG.get_or_init(|| {
        let on = std::env::var(FAULTS_ENV)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        AtomicBool::new(on)
    })
}

/// Whether fault injection is currently enabled. The disabled path of
/// every hook is this one relaxed load and a branch.
#[inline]
pub fn enabled() -> bool {
    flag().load(Ordering::Relaxed) // ordering: advisory gate; a stale read only delays arm/disarm
}

/// Enables or disables fault injection at runtime, overriding the
/// [`FAULTS_ENV`] startup value.
pub fn set_enabled(on: bool) {
    flag().store(on, Ordering::Relaxed); // ordering: advisory gate; a stale read only delays arm/disarm
}

/// Installs a fault plan (replacing the previous one) and resets the
/// hit/fired counters so cadences start fresh. Does **not** change the
/// enabled flag — call [`set_enabled`] to arm it.
pub fn configure(plan: FaultPlan) {
    let st = state();
    st.infer_panic_every
        .store(plan.infer_panic_every, Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
    st.infer_delay_ns.store(
        plan.infer_delay.as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed, // ordering: independent plan slot; stale reads only shift the fault cadence
    );
    st.infer_delay_every
        .store(plan.infer_delay_every, Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
    st.malform_every
        .store(plan.malform_every, Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
    st.worker_panic_every
        .store(plan.worker_panic_every, Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
    st.worker_delay_ns.store(
        plan.worker_delay.as_nanos().min(u64::MAX as u128) as u64,
        Ordering::Relaxed, // ordering: independent plan slot; stale reads only shift the fault cadence
    );
    st.worker_delay_every
        .store(plan.worker_delay_every, Ordering::Relaxed); // ordering: independent plan slot; stale reads only shift the fault cadence
    reset();
}

/// Zeroes the hit and fired counters (cadences restart from the top).
pub fn reset() {
    let st = state();
    for c in [
        &st.infer_hits,
        &st.malform_hits,
        &st.worker_hits,
        &st.infer_panics,
        &st.infer_delays,
        &st.malformed,
        &st.worker_panics,
        &st.worker_delays,
    ] {
        c.store(0, Ordering::Relaxed); // ordering: relaxed counter reset; tallies are monotonic telemetry
    }
}

/// Faults fired since the last [`reset`].
pub fn stats() -> FaultStats {
    let st = state();
    FaultStats {
        // ordering: relaxed counter reads — the snapshot is telemetry, not a sync point.
        infer_panics: st.infer_panics.load(Ordering::Relaxed),
        infer_delays: st.infer_delays.load(Ordering::Relaxed),
        malformed: st.malformed.load(Ordering::Relaxed),
        worker_panics: st.worker_panics.load(Ordering::Relaxed),
        worker_delays: st.worker_delays.load(Ordering::Relaxed),
    }
}

/// Whether hit number `hit` (1-based) fires under cadence `every`.
fn due(hit: u64, every: u64) -> bool {
    every != 0 && hit.is_multiple_of(every)
}

/// Injection point: inside the server's dispatch closure, immediately
/// before the batch function. May sleep, then may panic (the dispatch
/// closure's catch-unwind turns the panic into `InferenceFailed` for
/// exactly the batch's own requests).
#[inline]
pub(crate) fn infer_fault() {
    if !enabled() {
        return;
    }
    infer_fault_enabled();
}

#[cold]
fn infer_fault_enabled() {
    let st = state();
    // ordering: relaxed cadence counters; RMW atomicity alone fixes the firing pattern.
    let hit = st.infer_hits.fetch_add(1, Ordering::Relaxed) + 1;
    if due(hit, st.infer_delay_every.load(Ordering::Relaxed)) {
        st.infer_delays.fetch_add(1, Ordering::Relaxed);
        // conformance: allow(no-sleep-in-library) — the injected delay IS the fault
        std::thread::sleep(Duration::from_nanos(
            st.infer_delay_ns.load(Ordering::Relaxed), // ordering: plan slot read; staleness only shifts the delay length
        ));
    }
    // ordering: relaxed cadence check and tally, as above.
    if due(hit, st.infer_panic_every.load(Ordering::Relaxed)) {
        st.infer_panics.fetch_add(1, Ordering::Relaxed);
        panic!("injected fault: panic before batch function (hit {hit})");
    }
}

/// Injection point: after a successful batch, should the dispatch path
/// truncate the output vector (forcing the length-mismatch →
/// `InferenceFailed` arm)?
#[inline]
pub(crate) fn take_malform() -> bool {
    if !enabled() {
        return false;
    }
    take_malform_enabled()
}

#[cold]
fn take_malform_enabled() -> bool {
    let st = state();
    // ordering: relaxed cadence counters; RMW atomicity alone fixes the firing pattern.
    let hit = st.malform_hits.fetch_add(1, Ordering::Relaxed) + 1;
    let fire = due(hit, st.malform_every.load(Ordering::Relaxed));
    if fire {
        st.malformed.fetch_add(1, Ordering::Relaxed); // ordering: relaxed fired tally
    }
    fire
}

/// Injection point: on a pool worker, before a claimed task runs. Only
/// sleeps (a pre-task panic would drop the task and lose its requests —
/// the panic site is [`worker_panic`], after completion).
#[inline]
pub(crate) fn worker_delay() {
    if !enabled() {
        return;
    }
    worker_delay_enabled();
}

#[cold]
fn worker_delay_enabled() {
    let st = state();
    // ordering: relaxed cadence counters; RMW atomicity alone fixes the firing pattern.
    let hit = st.worker_hits.fetch_add(1, Ordering::Relaxed) + 1;
    if due(hit, st.worker_delay_every.load(Ordering::Relaxed)) {
        st.worker_delays.fetch_add(1, Ordering::Relaxed);
        // conformance: allow(no-sleep-in-library) — the injected delay IS the fault
        std::thread::sleep(Duration::from_nanos(
            st.worker_delay_ns.load(Ordering::Relaxed), // ordering: plan slot read; staleness only shifts the delay length
        ));
    }
}

/// Injection point: on a pool worker, after a claimed task has run to
/// completion. May panic — the worker's catch-unwind must swallow it
/// and keep the worker alive (no request is lost because the task
/// already finished).
#[inline]
pub(crate) fn worker_panic() {
    if !enabled() {
        return;
    }
    worker_panic_enabled();
}

#[cold]
fn worker_panic_enabled() {
    let st = state();
    // Reuses the worker hit counter advanced by `worker_delay` (both
    // hooks bracket the same task), so delay and panic cadences count
    // the same sequence of tasks.
    // ordering: relaxed cadence reads; the hooks bracket the same task on one thread.
    let hit = st.worker_hits.load(Ordering::Relaxed);
    if due(hit, st.worker_panic_every.load(Ordering::Relaxed)) {
        st.worker_panics.fetch_add(1, Ordering::Relaxed);
        panic!("injected fault: worker panic after task (hit {hit})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // The process-wide arm/disarm guard shared with the chaos and
    // wire-protocol suites: serializes every test touching the global
    // plan/flag and disarms on drop, panicking assertions included.
    use crate::test_support::lock_faults;

    #[test]
    fn disabled_hooks_fire_nothing() {
        let _g = lock_faults();
        let prior = enabled();
        set_enabled(false);
        configure(FaultPlan {
            infer_panic_every: 1,
            malform_every: 1,
            ..FaultPlan::default()
        });
        infer_fault(); // must not panic
        assert!(!take_malform());
        worker_delay();
        worker_panic();
        assert_eq!(stats(), FaultStats::default(), "nothing fires while off");
        set_enabled(prior);
    }

    #[test]
    fn cadences_are_every_nth_and_counted() {
        let _g = lock_faults();
        let prior = enabled();
        configure(FaultPlan {
            malform_every: 3,
            ..FaultPlan::default()
        });
        set_enabled(true);
        let fired: Vec<bool> = (0..9).map(|_| take_malform()).collect();
        set_enabled(prior);
        assert_eq!(
            fired,
            vec![false, false, true, false, false, true, false, false, true],
            "exactly every 3rd hit fires"
        );
        assert_eq!(stats().malformed, 3);
    }

    #[test]
    fn injected_infer_panic_is_catchable_and_counted() {
        let _g = lock_faults();
        let prior = enabled();
        configure(FaultPlan {
            infer_panic_every: 2,
            infer_delay: Duration::from_millis(1),
            infer_delay_every: 1,
            ..FaultPlan::default()
        });
        set_enabled(true);
        let outcomes: Vec<bool> = (0..4)
            .map(|_| std::panic::catch_unwind(infer_fault).is_err())
            .collect();
        set_enabled(prior);
        assert_eq!(outcomes, vec![false, true, false, true]);
        let s = stats();
        assert_eq!(s.infer_panics, 2);
        assert_eq!(s.infer_delays, 4, "delay fires on every hit");
    }
}
