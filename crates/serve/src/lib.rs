//! `serve` — the serving runtime for the LP reproduction stack.
//!
//! Two layers, both free of model dependencies so the whole workspace can
//! build on them without cycles:
//!
//! * [`pool`] — a pooled work-stealing executor (fixed workers, per-worker
//!   deques plus a global injector, scoped spawns and an order-preserving
//!   [`pool::Pool::par_map`]). This replaces the scoped-thread-per-call
//!   fan-out that `dnn::data::par_map` used to spawn.
//! * [`server`] — a multi-model micro-batching inference server generic
//!   over request/response payloads: per-`(model, scenario)` queues, a
//!   max-batch/max-wait scheduler dispatching micro-batches onto the pool,
//!   synchronous [`server::Client`] handles, per-registration admission
//!   control ([`server::AdmissionPolicy`] queue caps with load shedding),
//!   and per-registration [`stats`] (count, mean, p50/p99 latency, shed /
//!   queue-depth backpressure counters).
//!
//! On top of the server sits [`async_front`] — the poll/completion-queue
//! asynchronous face: [`async_front::AsyncClient::submit`] returns a
//! [`async_front::Ticket`] without blocking, completions are harvested
//! from a completion queue or awaited as hand-rolled futures under
//! [`async_front::reactor`], so a single driver thread sustains thousands
//! of in-flight requests where the synchronous [`server::Client`] needs a
//! blocked OS thread each (`async_vs_sync` in `BENCH_serve.json`).
//!
//! `dnn::serving` supplies the glue that registers quantized DNN models
//! here with weight caches shared across scenarios; see
//! `crates/bench/src/bin/serve_throughput.rs` for the end-to-end driver
//! and `ARCHITECTURE.md` at the repo root for the life of a request.

#![warn(missing_docs)]

pub mod async_front;
pub mod pool;
pub mod server;
pub mod stats;

pub use async_front::{reactor, AsyncClient, Completion, InferFuture, Ticket};
pub use pool::{par_map_pooled, Pool};
pub use server::{AdmissionPolicy, BatchPolicy, Client, ServeError, Server};
pub use stats::{percentile, StatsCollector, StatsSnapshot};
