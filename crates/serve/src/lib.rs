//! `serve` — the serving runtime for the LP reproduction stack.
//!
//! Two layers, both free of model dependencies so the whole workspace can
//! build on them without cycles:
//!
//! * [`pool`] — a pooled work-stealing executor (fixed workers, per-worker
//!   deques plus a global injector, scoped spawns and an order-preserving
//!   [`pool::Pool::par_map`]). This replaces the scoped-thread-per-call
//!   fan-out that `dnn::data::par_map` used to spawn.
//! * [`server`] — a multi-model micro-batching inference server generic
//!   over request/response payloads: per-`(model, scenario)` queues
//!   described by a builder-style [`server::ScenarioSpec`] (admission
//!   cap, priority class, weighted-fair weight, deadline budget, batch
//!   override) and registered through the single
//!   [`server::Server::register`] entry point; a max-batch/max-wait
//!   scheduler consulting a pluggable [`sched::SchedPolicy`]
//!   ([`sched::Fifo`] | [`sched::StrictPriority`] |
//!   [`sched::WeightedFair`]) to pick which due queue to drain onto the
//!   pool; synchronous [`server::Client`] handles; per-registration
//!   admission control ([`server::AdmissionPolicy`] queue caps) and
//!   deadline budgets, each shedding with its own typed error; and
//!   per-registration [`stats`] (count, mean, p50/p99 latency,
//!   per-reason shed / queue-depth / starvation counters, plus
//!   per-priority-class aggregation).
//!
//! On top of the server sits [`async_front`] — the poll/completion-queue
//! asynchronous face: [`async_front::AsyncClient::submit`] returns a
//! [`async_front::Ticket`] without blocking, completions are harvested
//! from a completion queue or awaited as hand-rolled futures under
//! [`async_front::reactor`], so a single driver thread sustains thousands
//! of in-flight requests where the synchronous [`server::Client`] needs a
//! blocked OS thread each (`async_vs_sync` in `BENCH_serve.json`).
//!
//! Cross-cutting both layers sits [`trace`] — the observability
//! substrate: request-lifecycle [`trace::TraceEvent`]s (Submit → Admit →
//! Enqueue → PolicyPick → BatchStart/End → Complete, plus per-reason
//! sheds and pool task spans) recorded into per-thread ring buffers
//! behind a `SERVE_TRACE` gate whose disabled path is one branch;
//! always-on per-stage latency [`trace::Histogram`]s (queue wait /
//! service / delivery) in every [`stats::StatsSnapshot`]; and two export
//! faces — [`trace::export_chrome`] (Chrome trace-event JSON, Perfetto-
//! loadable) and [`server::Server::metrics_text`] (Prometheus text
//! exposition).
//!
//! Two robustness layers round the runtime out. [`overload`] adds
//! *predictive* admission: registrations opting in via
//! [`server::ScenarioSpec::predictive`] forecast the queue wait from
//! their live service histograms and shed doomed requests at submit
//! ([`server::ServeError::PredictedOverload`], with a `retry_after`
//! hint honored by the client-side [`overload::RetryPolicy`]), while
//! [`pool::Pool::with_reserved`] keeps a reserved high-lane of workers
//! that low-priority batches may never occupy. [`faults`] is the
//! matching fault-injection harness (`SERVE_FAULTS`, zero-cost when
//! off) that injects panics, latency, and malformed batches into infer
//! fns and pool workers so those guarantees are tested under induced
//! failure.
//!
//! At the outermost boundary sits [`net`] — the network edge: a
//! std-only TCP daemon ([`net::NetServer`], listener thread +
//! connection-reactor threads) speaking a length-prefixed binary
//! framing protocol whose resumable [`net::FrameParser`] state machines
//! keep partial reads from ever blocking another connection. Request
//! frames ride the [`async_front`] completion queue (ticket ids double
//! as wire correlation ids, so responses complete out of order) and
//! every typed [`server::ServeError`] maps to a stable wire
//! [`net::Status`] code — remote [`net::NetClient`]s get the same
//! backpressure semantics, including the `PredictedOverload`
//! `retry_after` hint, as in-process callers.
//!
//! `dnn::serving` supplies the glue that registers quantized DNN models
//! here with weight caches shared across scenarios; see
//! `crates/bench/src/bin/serve_throughput.rs` for the end-to-end driver
//! and `ARCHITECTURE.md` at the repo root for the life of a request.
//! [`test_support`] carries the cross-suite test scaffolding (the
//! fault-harness arm/disarm guard).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod async_front;
pub mod faults;
pub mod net;
pub mod overload;
pub mod pool;
pub mod sched;
pub mod server;
pub mod stats;
pub mod test_support;
pub mod trace;

pub use async_front::{reactor, AsyncClient, Completion, InferFuture, Ticket};
pub use faults::{FaultPlan, FaultStats};
pub use net::{
    Frame, FrameParser, NetClient, NetConfig, NetServer, NetStatsSnapshot, RequestFrame,
    ResponseFrame, Status, WireError,
};
pub use overload::{Overload, RetryPolicy};
pub use pool::{par_map_pooled, Pool};
pub use sched::{DueEntry, Fifo, SchedPolicy, StrictPriority, WeightedFair};
pub use server::{AdmissionPolicy, BatchPolicy, Client, ScenarioSpec, ServeError, Server};
pub use stats::{
    percentile, Reservoir, ReservoirSnapshot, StageHistograms, StageSummary, StatsCollector,
    StatsSnapshot,
};
pub use trace::{Histogram, ShedReason, TraceEvent, TraceRecord, TraceStats};
