//! `serve` — the serving runtime for the LP reproduction stack.
//!
//! Two layers, both free of model dependencies so the whole workspace can
//! build on them without cycles:
//!
//! * [`pool`] — a pooled work-stealing executor (fixed workers, per-worker
//!   deques plus a global injector, scoped spawns and an order-preserving
//!   [`pool::Pool::par_map`]). This replaces the scoped-thread-per-call
//!   fan-out that `dnn::data::par_map` used to spawn.
//! * [`server`] — a multi-model micro-batching inference server generic
//!   over request/response payloads: per-`(model, scenario)` queues, a
//!   max-batch/max-wait scheduler dispatching micro-batches onto the pool,
//!   synchronous [`server::Client`] handles, and per-registration
//!   [`stats`] (count, mean, p50/p99 latency).
//!
//! `dnn::serving` supplies the glue that registers quantized DNN models
//! here with weight caches shared across scenarios; see
//! `crates/bench/src/bin/serve_throughput.rs` for the end-to-end driver.

#![warn(missing_docs)]

pub mod pool;
pub mod server;
pub mod stats;

pub use pool::{par_map_pooled, Pool};
pub use server::{BatchPolicy, Client, ServeError, Server};
pub use stats::{percentile, StatsCollector, StatsSnapshot};
