//! Predictive overload control: shed doomed requests at **submit**, not
//! at dispatch.
//!
//! The deadline mechanism ([`ScenarioSpec::deadline`]) is reactive — an
//! overloaded registration accepts every request, lets it age in the
//! queue, and sheds it at dispatch once the budget has already expired
//! ([`ServeError::DeadlineExpired`]). Correct, but wasteful twice over:
//! the caller learns of the failure a whole budget *late*, and the
//! request occupied an admission slot the entire time.
//!
//! This module turns the exact per-stage service histograms of
//! [`StatsCollector`](crate::stats::StatsCollector) into a *forecast*.
//! At submit, the predicted queue wait for a new request is
//!
//! ```text
//! predicted_wait = (outstanding / mean_batch_size) · mean_service · safety
//! ```
//!
//! — outstanding requests ahead of it, divided into the batches the
//! dispatcher will actually form, each costing the registration's
//! observed mean batch service time, scaled by a configurable safety
//! factor ([`SAFETY_ENV`], default 1). When that forecast already
//! exceeds the deadline budget, the request is refused immediately with
//! [`ServeError::PredictedOverload`], carrying a `retry_after` hint
//! (how long until the backlog should have drained below the budget).
//! The estimate is deliberately **serial** (it ignores pool
//! parallelism): under the sustained saturation that makes prediction
//! matter, batches of one registration effectively serialize behind the
//! shared pool anyway, and a conservative forecast sheds a borderline
//! request early rather than letting it expire late.
//!
//! The predictor is **opt-in per registration**
//! ([`ScenarioSpec::predictive`]) and silent until warm: with fewer
//! than [`WARMUP_BATCHES`] completed batches there is no service
//! evidence, so everything is admitted and the deadline mechanism
//! remains the backstop (it also stays the backstop for mid-queue
//! slowdowns the forecast missed).
//!
//! The client-side counterpart is [`RetryPolicy`]: capped exponential
//! backoff that **honors `retry_after`** — the server's hint is a floor
//! on the sleep, so a retrying client cannot hammer a backlogged queue
//! faster than it can possibly drain.
//!
//! [`ScenarioSpec::deadline`]: crate::server::ScenarioSpec::deadline
//! [`ScenarioSpec::predictive`]: crate::server::ScenarioSpec::predictive
//! [`ServeError::DeadlineExpired`]: crate::server::ServeError::DeadlineExpired
//! [`ServeError::PredictedOverload`]: crate::server::ServeError::PredictedOverload

use crate::server::ServeError;
use std::sync::OnceLock;
use std::time::Duration;

/// Environment variable scaling the predicted wait (a float, clamped to
/// `[0.1, 10.0]`, default `1.0`). Values above 1 shed earlier
/// (conservative); below 1 admit deeper backlogs (optimistic).
pub const SAFETY_ENV: &str = "SERVE_PREDICT_SAFETY";

/// Completed batches a registration must have served before the
/// predictor trusts its service-rate estimate. Below this, every
/// submission is admitted (the deadline backstop still applies).
pub const WARMUP_BATCHES: u64 = 4;

/// The process-wide safety factor: [`SAFETY_ENV`] clamped to
/// `[0.1, 10.0]`, default 1.0. Read once per process.
pub fn safety_factor() -> f64 {
    static SAFETY: OnceLock<f64> = OnceLock::new();
    *SAFETY.get_or_init(|| {
        std::env::var(SAFETY_ENV)
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|f| f.is_finite())
            .map_or(1.0, |f| f.clamp(0.1, 10.0))
    })
}

/// A shed decision from [`assess`]: the forecast that exceeded the
/// budget, and the retry hint derived from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overload {
    /// Forecast queue wait for a request admitted now.
    pub predicted_wait: Duration,
    /// The deadline budget the forecast exceeded.
    pub budget: Duration,
    /// How long until the backlog should have drained enough for a new
    /// request to fit the budget again (`predicted_wait - budget`,
    /// floored at 100 µs so the hint is never a busy-loop invitation).
    pub retry_after: Duration,
}

/// Evaluates the predictive admission gate for one registration.
///
/// * `service` — `(batches completed, mean batch service seconds)` from
///   [`StatsCollector::service_rate`](crate::stats::StatsCollector::service_rate)
///   (the service histogram records one sample per *request*, but every
///   request of a batch records the same batch wall time, so its mean
///   is the mean batch service time).
/// * `batches` — `(dispatch count, total requests dispatched)` from the
///   registration's batch-size reservoir; their ratio is the mean batch
///   size the dispatcher has been achieving.
/// * `outstanding` — accepted-but-unfulfilled requests ahead of the
///   candidate (queued or already dispatched).
/// * `budget` — the registration's deadline budget.
/// * `safety` — multiplier on the forecast ([`safety_factor`]).
///
/// Returns `Some(Overload)` when the candidate should be shed, `None`
/// when it should be admitted (including whenever the estimate is still
/// cold: fewer than [`WARMUP_BATCHES`] dispatched batches).
pub fn assess(
    service: (u64, f64),
    batches: (u64, f64),
    outstanding: usize,
    budget: Duration,
    safety: f64,
) -> Option<Overload> {
    let (served, mean_service_s) = service;
    let (dispatches, requests_dispatched) = batches;
    if served == 0 || dispatches < WARMUP_BATCHES || outstanding == 0 {
        return None;
    }
    let mean_batch = (requests_dispatched / dispatches as f64).max(1.0);
    let batches_ahead = outstanding as f64 / mean_batch;
    let wait_s = batches_ahead * mean_service_s * safety;
    if !wait_s.is_finite() || wait_s <= budget.as_secs_f64() {
        return None;
    }
    let predicted_wait = Duration::from_secs_f64(wait_s);
    let retry_after = predicted_wait
        .saturating_sub(budget)
        .max(Duration::from_micros(100));
    Some(Overload {
        predicted_wait,
        budget,
        retry_after,
    })
}

/// Client-side capped exponential backoff for shed submissions.
///
/// Wrap any submit closure — sync [`Client::infer`] or async
/// [`AsyncClient::submit`] both return `Result<_, ServeError>` — in
/// [`RetryPolicy::run`]: retryable sheds ([`ServeError::Rejected`] and
/// [`ServeError::PredictedOverload`]) are retried up to `max_attempts`
/// times with exponentially growing sleeps (`base · 2^attempt`, capped
/// at `cap`); every other error, and a still-shed final attempt, is
/// returned as-is. A `PredictedOverload`'s `retry_after` hint acts as a
/// **floor** on the sleep — the server knows how fast its backlog
/// drains, and retrying sooner can only be shed again.
///
/// [`Client::infer`]: crate::server::Client::infer
/// [`AsyncClient::submit`]: crate::async_front::AsyncClient::submit
///
/// # Examples
///
/// ```
/// use serve::overload::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy::default();
/// // Exponential growth, capped…
/// assert!(policy.backoff(0, None) < policy.backoff(3, None));
/// assert!(policy.backoff(30, None) <= policy.cap);
/// // …and the server's retry_after hint is a floor:
/// let hint = Duration::from_millis(200);
/// assert_eq!(policy.backoff(0, Some(hint)), hint);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try + retries). 1 means no retries.
    pub max_attempts: u32,
    /// Sleep before the first retry (doubles each further retry).
    pub base: Duration,
    /// Upper bound on the exponential term (`retry_after` hints may
    /// exceed it — the server's drain estimate wins).
    pub cap: Duration,
}

impl Default for RetryPolicy {
    /// 5 attempts, 1 ms initial backoff, 100 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based): the capped
    /// exponential `min(base · 2^attempt, cap)`, floored by the server's
    /// `retry_after` hint when one rode in on the shed error.
    pub fn backoff(&self, attempt: u32, retry_after: Option<Duration>) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        match retry_after {
            Some(hint) => exp.max(hint),
            None => exp,
        }
    }

    /// Runs `op` until it succeeds, fails non-retryably, or exhausts
    /// `max_attempts`; sleeps [`RetryPolicy::backoff`] between attempts.
    /// Returns the last error when attempts run out.
    pub fn run<T>(&self, mut op: impl FnMut() -> Result<T, ServeError>) -> Result<T, ServeError> {
        let attempts = self.max_attempts.max(1);
        let mut last: Option<ServeError> = None;
        for attempt in 0..attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    let hint = match &e {
                        ServeError::PredictedOverload { retry_after, .. } => Some(*retry_after),
                        ServeError::Rejected { .. } => None,
                        // Anything else is not a load-shed: retrying
                        // cannot help (unknown key, shutdown, …).
                        _ => return Err(e),
                    };
                    last = Some(e);
                    if attempt + 1 < attempts {
                        std::thread::sleep(self.backoff(attempt, hint)); // conformance: allow(no-sleep-in-library) — the retry backoff is RetryPolicy's documented contract
                    }
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A warm estimate: 10 batches of mean size 4, 20 ms mean service.
    const SERVICE: (u64, f64) = (40, 0.020);
    const BATCHES: (u64, f64) = (10, 40.0);

    #[test]
    fn cold_estimates_admit_everything() {
        let budget = Duration::from_millis(1);
        // No service evidence at all.
        assert_eq!(assess((0, 0.0), (0, 0.0), 1000, budget, 1.0), None);
        // Below the batch warm-up threshold.
        assert_eq!(
            assess((4, 0.020), (WARMUP_BATCHES - 1, 12.0), 1000, budget, 1.0),
            None
        );
        // Warm but idle: nothing ahead, nothing to predict.
        assert_eq!(assess(SERVICE, BATCHES, 0, budget, 1.0), None);
    }

    #[test]
    fn forecast_scales_with_backlog_and_safety() {
        // 40 outstanding / mean batch 4 = 10 batches · 20 ms = 200 ms.
        let budget = Duration::from_millis(100);
        let ov = assess(SERVICE, BATCHES, 40, budget, 1.0).expect("must shed");
        assert!(
            (ov.predicted_wait.as_secs_f64() - 0.200).abs() < 1e-9,
            "predicted {:?}",
            ov.predicted_wait
        );
        assert_eq!(ov.budget, budget);
        assert_eq!(ov.retry_after, Duration::from_millis(100));
        // The same backlog under a roomier budget is admitted…
        assert_eq!(
            assess(SERVICE, BATCHES, 40, Duration::from_millis(250), 1.0),
            None
        );
        // …unless the safety factor scales the forecast past it.
        assert!(assess(SERVICE, BATCHES, 40, Duration::from_millis(250), 2.0).is_some());
    }

    #[test]
    fn retry_after_is_floored_not_zero() {
        // Forecast barely over budget: the hint must still be usable.
        let budget = Duration::from_millis(199);
        let ov = assess(SERVICE, BATCHES, 40, budget, 1.0).expect("must shed");
        assert!(ov.retry_after >= Duration::from_micros(100));
        assert!(ov.retry_after <= Duration::from_millis(2));
    }

    #[test]
    fn backoff_grows_caps_and_honors_hints() {
        let p = RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
        };
        assert_eq!(p.backoff(0, None), Duration::from_millis(1));
        assert_eq!(p.backoff(2, None), Duration::from_millis(4));
        assert_eq!(p.backoff(3, None), Duration::from_millis(8));
        assert_eq!(p.backoff(10, None), Duration::from_millis(8), "capped");
        // A hint above the cap wins (the server's drain estimate rules).
        let hint = Duration::from_millis(50);
        assert_eq!(p.backoff(0, Some(hint)), hint);
        // A hint below the exponential term does not shrink the sleep.
        assert_eq!(
            p.backoff(3, Some(Duration::from_millis(1))),
            Duration::from_millis(8)
        );
    }

    #[test]
    fn run_retries_sheds_and_stops_on_hard_errors() {
        let p = RetryPolicy {
            max_attempts: 4,
            base: Duration::from_micros(10),
            cap: Duration::from_micros(100),
        };
        // Shed twice, then succeed.
        let mut calls = 0;
        let out = p.run(|| {
            calls += 1;
            if calls < 3 {
                Err(ServeError::Rejected {
                    model: "m".into(),
                    scenario: "s".into(),
                    cap: 1,
                })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
        // Predicted overload retries too, and exhaustion returns the
        // last shed error.
        let mut calls = 0;
        let out: Result<(), _> = p.run(|| {
            calls += 1;
            Err(ServeError::PredictedOverload {
                model: "m".into(),
                scenario: "s".into(),
                predicted_wait: Duration::from_millis(2),
                budget: Duration::from_millis(1),
                retry_after: Duration::from_micros(50),
            })
        });
        assert_eq!(calls, 4, "every attempt consumed");
        assert!(matches!(out, Err(ServeError::PredictedOverload { .. })));
        // Hard errors return immediately, unretried.
        let mut calls = 0;
        let out: Result<(), _> = p.run(|| {
            calls += 1;
            Err(ServeError::ShuttingDown)
        });
        assert_eq!(calls, 1);
        assert_eq!(out, Err(ServeError::ShuttingDown));
    }
}
