//! Pluggable scheduling policies for the batch server.
//!
//! The scheduler thread in [`crate::server`] repeatedly builds the list
//! of registrations that have a **due** micro-batch (a full batch waiting,
//! or a partial one whose oldest request hit its `max_wait`) and asks a
//! [`SchedPolicy`] which one to dispatch next. The policy sees one
//! [`DueEntry`] per due registration — its stable id, priority class, WFQ
//! weight and queue occupancy — and nothing else, so policies are pure
//! picking strategies with no access to queues or payloads.
//!
//! Three implementations ship:
//!
//! * [`Fifo`] — rotating scan order (ascending registration order,
//!   resuming past the last pick): every due queue is served in turn,
//!   the same no-starvation service the pre-policy flush-all scheduler
//!   gave. The default.
//! * [`StrictPriority`] — always the due registration with the smallest
//!   [`priority class`](crate::server::ScenarioSpec::priority) value
//!   (class 0 is the most urgent). Lower classes can starve under
//!   sustained high-class load — by design; the server surfaces the
//!   [`passed_over`](crate::stats::StatsSnapshot::passed_over) counter so
//!   starvation is visible in stats rather than silent.
//! * [`WeightedFair`] — deficit round robin over per-registration
//!   [`weights`](crate::server::ScenarioSpec::weight): under saturation,
//!   each registration's throughput share converges to
//!   `weight / Σ weights` (the `policy_study` section of
//!   `BENCH_serve.json` measures this within ±20%).
//!
//! Policies are consulted only when at least one registration is due, so
//! an idle policy costs nothing; and the scheduler reports every
//! dispatched batch back via [`SchedPolicy::charge`], which is how DRR
//! accounts spent credit.

use std::collections::HashMap;

/// One due registration, as presented to a [`SchedPolicy`]. Entries are
/// handed to [`SchedPolicy::pick`] sorted by ascending `id` (registration
/// order), and `id` is stable for the lifetime of a registration —
/// policies may key internal state on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DueEntry {
    /// Stable per-server registration id (ascending registration order).
    pub id: u64,
    /// Priority class from the registration's
    /// [`ScenarioSpec`](crate::server::ScenarioSpec); **smaller is more
    /// urgent** (class 0 outranks class 1).
    pub priority: u8,
    /// Weighted-fair share weight (≥ 1) from the registration's spec.
    pub weight: u32,
    /// Requests currently waiting in the registration's queue.
    pub queued: usize,
    /// Size of the batch a dispatch would drain now
    /// (`min(queued, max_batch)`).
    pub next_batch: usize,
}

/// A scheduling policy: picks which due registration's queue the
/// scheduler drains next.
///
/// Implementations must be `Send` (the policy lives on the scheduler
/// thread) and should be O(due-list) per pick — `pick` runs once per
/// dispatched batch.
pub trait SchedPolicy: Send {
    /// Short stable name, recorded in server diagnostics and
    /// `BENCH_serve.json`; it also labels every
    /// [`PolicyPick`](crate::trace::TraceEvent::PolicyPick) trace event
    /// and the `serve_scheduler_info` series in
    /// [`Server::metrics_text`](crate::server::Server::metrics_text).
    fn name(&self) -> &'static str;

    /// Picks the index (into `due`) of the registration to dispatch next.
    /// `due` is non-empty and sorted by ascending [`DueEntry::id`]. An
    /// out-of-range return is clamped by the scheduler.
    fn pick(&mut self, due: &[DueEntry]) -> usize;

    /// Feedback after a dispatch: registration `id` (as previously
    /// returned from [`SchedPolicy::pick`]) dispatched a batch of `n`
    /// requests. Policies that meter throughput (DRR) charge credit here;
    /// stateless policies ignore it.
    fn charge(&mut self, _id: u64, _n: usize) {}
}

/// Rotating scan order: picks the first due registration past the last
/// one served (ascending registration order, wrapping), so every due
/// queue gets a dispatch each cycle. This is the service guarantee the
/// pre-policy scheduler gave by flushing *every* due queue per pass —
/// a fixed pick of the first due entry would instead starve
/// later-registered queues once dispatch became paced. With a single
/// active registration the order is exactly the legacy one. The default
/// policy.
#[derive(Debug, Default, Clone)]
pub struct Fifo {
    /// Id of the last registration served; the next pick resumes after
    /// it.
    cursor: Option<u64>,
}

impl SchedPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, due: &[DueEntry]) -> usize {
        let idx = match self.cursor {
            Some(c) => due.iter().position(|e| e.id > c).unwrap_or(0),
            None => 0,
        };
        self.cursor = Some(due[idx].id);
        idx
    }
}

/// Strict priority classes: the due registration with the smallest
/// `priority` value always wins; ties fall back to registration order.
/// High-class traffic therefore never waits behind a backlog of a lower
/// class — and a saturated high class starves lower ones, which the
/// server makes visible through the per-registration
/// [`passed_over`](crate::stats::StatsSnapshot::passed_over) counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct StrictPriority;

impl SchedPolicy for StrictPriority {
    fn name(&self) -> &'static str {
        "strict_priority"
    }

    fn pick(&mut self, due: &[DueEntry]) -> usize {
        due.iter()
            .enumerate()
            .min_by_key(|(_, e)| e.priority)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Deficit round robin over per-registration weights.
///
/// Each due registration accumulates `weight` credits (measured in
/// requests) per round-robin visit; a registration is served when its
/// credit covers its next batch, and the dispatched batch size is charged
/// against the credit. Under saturation every due queue is visited
/// equally often, so served requests converge to shares proportional to
/// the weights — without ever starving a weight-1 queue the way strict
/// priority would.
///
/// Credit state is pruned to the currently-due set on every pick (the
/// standard DRR "reset the deficit when the queue empties" rule,
/// approximated on due-ness), so departed or idle registrations do not
/// hoard credit and the map cannot grow beyond the live registration
/// count.
#[derive(Debug, Default)]
pub struct WeightedFair {
    deficit: HashMap<u64, f64>,
    /// Id of the last registration served, so each pick resumes the round
    /// robin *after* it.
    cursor: Option<u64>,
}

impl SchedPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted_fair"
    }

    fn pick(&mut self, due: &[DueEntry]) -> usize {
        // Reset credit for queues that are no longer due (emptied,
        // deregistered, or below their dispatch threshold).
        self.deficit.retain(|id, _| due.iter().any(|e| e.id == *id));
        let n = due.len();
        // Resume the ring just past the cursor.
        let start = match self.cursor {
            Some(c) => due.iter().position(|e| e.id > c).unwrap_or(0),
            None => 0,
        };
        // Each full cycle awards every due queue its quantum; weight ≥ 1
        // guarantees some queue eventually covers its (finite) next
        // batch, so this terminates.
        loop {
            for k in 0..n {
                let idx = (start + k) % n;
                let e = &due[idx];
                let credit = self.deficit.entry(e.id).or_insert(0.0);
                *credit += f64::from(e.weight.max(1));
                if *credit >= e.next_batch as f64 {
                    self.cursor = Some(e.id);
                    return idx;
                }
            }
        }
    }

    fn charge(&mut self, id: u64, n: usize) {
        if let Some(credit) = self.deficit.get_mut(&id) {
            *credit -= n as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u64, priority: u8, weight: u32, queued: usize) -> DueEntry {
        DueEntry {
            id,
            priority,
            weight,
            queued,
            next_batch: queued.min(4),
        }
    }

    /// Simulates a saturated scheduler: every registration always has a
    /// full batch due; returns per-registration dispatched request
    /// counts after `rounds` picks.
    fn simulate(policy: &mut dyn SchedPolicy, entries: &[DueEntry], rounds: usize) -> Vec<usize> {
        let mut served = vec![0usize; entries.len()];
        for _ in 0..rounds {
            let i = policy.pick(entries).min(entries.len() - 1);
            served[i] += entries[i].next_batch;
            policy.charge(entries[i].id, entries[i].next_batch);
        }
        served
    }

    #[test]
    fn fifo_rotates_over_due_queues() {
        let mut p = Fifo::default();
        let due = [entry(3, 0, 1, 8), entry(7, 0, 1, 8)];
        // Round robin: neither due queue can be starved by the other.
        assert_eq!(p.pick(&due), 0);
        assert_eq!(p.pick(&due), 1);
        assert_eq!(p.pick(&due), 0);
        // A single due queue is always picked (the legacy order).
        let solo = [entry(7, 0, 1, 8)];
        assert_eq!(p.pick(&solo), 0);
        assert_eq!(p.name(), "fifo");
    }

    #[test]
    fn strict_priority_prefers_smallest_class_with_stable_ties() {
        let mut p = StrictPriority;
        let due = [entry(1, 2, 1, 8), entry(2, 0, 1, 8), entry(3, 1, 1, 8)];
        assert_eq!(p.pick(&due), 1, "class 0 outranks classes 1 and 2");
        let tied = [entry(1, 1, 1, 8), entry(2, 1, 1, 8)];
        assert_eq!(p.pick(&tied), 0, "ties break by registration order");
    }

    #[test]
    fn weighted_fair_shares_track_weights_exactly_under_saturation() {
        let mut p = WeightedFair::default();
        let due = [
            entry(1, 0, 1, 100),
            entry(2, 0, 2, 100),
            entry(3, 0, 4, 100),
        ];
        let served = simulate(&mut p, &due, 700);
        let total: usize = served.iter().sum();
        for (i, w) in [1.0f64, 2.0, 4.0].iter().enumerate() {
            let share = served[i] as f64 / total as f64;
            let expect = w / 7.0;
            assert!(
                (share - expect).abs() / expect < 0.05,
                "share {i}: {share:.3} vs {expect:.3} (served {served:?})"
            );
        }
    }

    #[test]
    fn weighted_fair_never_starves_weight_one() {
        let mut p = WeightedFair::default();
        let due = [entry(1, 0, 1, 100), entry(2, 0, 64, 100)];
        let served = simulate(&mut p, &due, 650);
        assert!(
            served[0] > 0,
            "weight-1 queue must still be served: {served:?}"
        );
    }

    #[test]
    fn weighted_fair_resets_credit_when_a_queue_leaves_the_due_set() {
        let mut p = WeightedFair::default();
        let both = [entry(1, 0, 1, 100), entry(2, 0, 8, 100)];
        let _ = simulate(&mut p, &both, 50);
        // Queue 2 disappears (drained/deregistered): its credit is pruned
        // and queue 1 is served without cycling forever.
        let solo = [entry(1, 0, 1, 100)];
        assert_eq!(p.pick(&solo), 0);
        assert!(!p.deficit.contains_key(&2), "departed credit pruned");
    }
}
