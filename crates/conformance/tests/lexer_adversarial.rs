//! Adversarial inputs for the hand-rolled lexer: constructs that fool a
//! regex-grade scanner (raw-string fences, char-vs-lifetime quotes,
//! comment markers inside literals) must not fool the token stream the
//! checks pattern-match over.

use conformance::lexer::{lex, Lexed, Tok};

fn idents(l: &Lexed) -> Vec<&str> {
    l.tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect()
}

fn strs(l: &Lexed) -> Vec<&str> {
    l.tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .collect()
}

#[test]
fn raw_string_hash_fences_hide_code_and_lesser_fences() {
    let l = lex(r####"let s = r##"mul_add "# thread::sleep"##; fn after() {}"####);
    assert_eq!(idents(&l), ["let", "s", "fn", "after"]);
    assert_eq!(strs(&l), [r##"mul_add "# thread::sleep"##]);
}

#[test]
fn byte_and_raw_byte_strings_hide_code() {
    let l = lex(r##"let a = b"mul_add"; let b = br#"Ordering::SeqCst"#;"##);
    assert_eq!(idents(&l), ["let", "a", "let", "b"]);
    assert_eq!(strs(&l).len(), 2);
}

#[test]
fn chars_lifetimes_and_labels_disambiguate() {
    let l = lex("fn f<'a>(x: &'a u8) -> char { 'x' } 'outer: loop { break 'outer; }");
    let lifetimes: Vec<&str> = l
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Lifetime(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(lifetimes, ["a", "a", "outer", "outer"]);
    let chars = l
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, Tok::CharLit))
        .count();
    assert_eq!(chars, 1);
}

#[test]
fn escaped_char_literals_do_not_derail() {
    let l = lex(r"let q = '\''; let b = '\\'; let u = '\u{1F600}'; fn g() {}");
    assert_eq!(idents(&l), ["let", "q", "let", "b", "let", "u", "fn", "g"]);
    let chars = l
        .tokens
        .iter()
        .filter(|t| matches!(t.kind, Tok::CharLit))
        .count();
    assert_eq!(chars, 3);
}

#[test]
fn raw_identifiers_keep_their_name() {
    let l = lex("fn take(r#type: u8) -> u8 { r#type }");
    assert_eq!(idents(&l), ["fn", "take", "type", "u8", "u8", "type"]);
}

#[test]
fn quote_inside_block_comment_stays_comment() {
    let l = lex("/* a \" quote and a ' tick */ fn g() {}");
    assert_eq!(idents(&l), ["fn", "g"]);
    assert_eq!(l.comments.len(), 1);
}

#[test]
fn multiline_strings_keep_line_numbers_honest() {
    let l = lex("let s = \"a\nb\nc\";\nlet t = 1;");
    // The string token carries its *starting* line; the tokens after it
    // sit on the right lines despite the embedded newlines.
    let s_tok = l
        .tokens
        .iter()
        .find(|t| matches!(t.kind, Tok::Str(_)))
        .unwrap();
    assert_eq!(s_tok.line, 1);
    let t_tok = l
        .tokens
        .iter()
        .find(|t| matches!(&t.kind, Tok::Ident(s) if s == "t"))
        .unwrap();
    assert_eq!(t_tok.line, 4);
}

#[test]
fn range_expressions_do_not_merge_into_floats() {
    let l = lex("for i in 0..9 { let x = 1.5; let y = 1_000u64; let z = 0x1F; }");
    let nums: Vec<&str> = l
        .tokens
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Num(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(nums, ["0", "9", "1.5", "1_000u64", "0x1F"]);
}

#[test]
fn comment_runs_chain_across_consecutive_lines_only() {
    let src =
        "// first line\n// ordering: the reason\nlet x = 1;\n\n// ordering: far away\n\nlet y = 2;";
    let l = lex(src);
    // The two-line run ends on line 2, directly above the statement.
    assert!(l.comment_run_ending_at_contains(2, "ordering:"));
    // The needle in the run's *first* line is found from the run's end.
    assert!(l.comment_run_ending_at_contains(2, "first"));
    // A blank line between comment and statement breaks adjacency.
    assert!(!l.comment_run_ending_at_contains(6, "ordering:"));
    // Trailing-comment lookup by line.
    let trailer = lex("let n = 0; // ordering: tally");
    assert!(trailer.comment_on_line_contains(1, "ordering:"));
    assert!(!trailer.comment_on_line_contains(2, "ordering:"));
}

#[test]
fn unterminated_constructs_never_panic() {
    for src in ["\"never closed", "/* never closed", "r#\"never closed", "'"] {
        let _ = lex(src);
    }
}
