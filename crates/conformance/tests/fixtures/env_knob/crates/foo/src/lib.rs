//! Seeded violation: reads a knob the README table does not list.
#![deny(unsafe_code)]

pub fn knob() -> usize {
    std::env::var("FIXTURE_UNDOCUMENTED_KNOB")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}
