//! Seeded violation: a fused multiply-add in `lp` kernel code.
#![deny(unsafe_code)]

pub fn dot_step(a: f32, b: f32, acc: f32) -> f32 {
    a.mul_add(b, acc)
}
