//! Seeded violation: one atomic Ordering use with no justification.
#![deny(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

pub static N: AtomicUsize = AtomicUsize::new(0);

pub fn bump_unjustified() -> usize {
    N.fetch_add(1, Ordering::Relaxed) // seeded: a comment without the magic word
}

pub fn bump_justified() -> usize {
    N.fetch_add(1, Ordering::Relaxed) // ordering: relaxed tally, fixture baseline
}

pub fn compare(a: u32, b: u32) -> std::cmp::Ordering {
    // cmp::Ordering variants are out of scope for the audit.
    a.cmp(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        assert_eq!(N.load(Ordering::SeqCst), N.load(Ordering::SeqCst));
    }
}
