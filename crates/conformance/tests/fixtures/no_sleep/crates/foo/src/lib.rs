//! Seeded violation: a blocking nap in library code. The same call in
//! the #[cfg(test)] module below is exempt.
#![deny(unsafe_code)]

use std::time::Duration;

pub fn nap() {
    std::thread::sleep(Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_pace_themselves() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
