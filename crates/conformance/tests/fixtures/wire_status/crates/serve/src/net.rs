//! Seeded violations: a gap in the discriminants, a table far short of
//! the documented ten codes, and drift against ARCHITECTURE.md.

pub enum Status {
    Ok = 0,
    Shed = 2,
}
