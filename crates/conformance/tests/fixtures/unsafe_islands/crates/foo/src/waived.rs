//! A waived site: the inline directive must move this finding from the
//! findings list to the suppressed count, never silence it entirely.

pub fn poke_waived() -> i8 {
    let x = 200u8;
    unsafe { std::mem::transmute::<u8, i8>(x) } // conformance: allow(unsafe-islands) — fixture waiver
}
