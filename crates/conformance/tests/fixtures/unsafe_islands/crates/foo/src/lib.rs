//! Seeded violations: an `unsafe` block outside every sanctioned island,
//! in a crate whose root carries no deny/forbid(unsafe_code) attribute.

pub fn poke() -> i8 {
    let x = 200u8;
    unsafe { std::mem::transmute::<u8, i8>(x) }
}
