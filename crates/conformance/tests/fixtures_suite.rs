//! Negative suite: every check must fire on its seeded-violation
//! fixture tree under `tests/fixtures/`, proving the check is live.
//! The workspace walker skips any directory named `fixtures`, so these
//! trees never count against the real workspace — each test points the
//! runner at one fixture as if it were a workspace root.

use conformance::report::{CheckReport, Report};
use std::path::PathBuf;

fn run_fixture(name: &str) -> Report {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    conformance::run(&root).expect("fixture scan failed")
}

fn check<'a>(report: &'a Report, id: &str) -> &'a CheckReport {
    report
        .checks
        .iter()
        .find(|c| c.id == id)
        .unwrap_or_else(|| panic!("check `{id}` missing from report"))
}

#[test]
fn unsafe_islands_fires_and_counts_waivers() {
    let r = run_fixture("unsafe_islands");
    let c = check(&r, "unsafe-islands");
    // One unsanctioned block + one crate root without the lint attr.
    assert_eq!(c.findings.len(), 2, "{:?}", c.findings);
    assert!(c
        .findings
        .iter()
        .any(|f| f.file == "crates/foo/src/lib.rs" && f.line == 6));
    assert!(c
        .findings
        .iter()
        .any(|f| f.file == "crates/foo/src/lib.rs" && f.line == 0));
    // The waived site is counted, not silenced.
    assert_eq!(c.suppressed, 1);
}

#[test]
fn no_fma_fires_in_kernel_code() {
    let r = run_fixture("no_fma");
    let c = check(&r, "no-fma");
    assert_eq!(c.findings.len(), 1, "{:?}", c.findings);
    assert_eq!(c.findings[0].file, "crates/lp/src/lib.rs");
    assert_eq!(c.findings[0].line, 5);
}

#[test]
fn atomic_ordering_audit_fires_only_on_unjustified_sites() {
    let r = run_fixture("atomic_ordering");
    let c = check(&r, "atomic-ordering-audit");
    // The justified site, the cmp::Ordering use, and the #[cfg(test)]
    // module must all stay quiet; only the seeded site fires.
    assert_eq!(c.findings.len(), 1, "{:?}", c.findings);
    assert_eq!(c.findings[0].file, "crates/foo/src/lib.rs");
    assert_eq!(c.findings[0].line, 9);
}

#[test]
fn env_knob_registry_fires_in_both_directions() {
    let r = run_fixture("env_knob");
    let c = check(&r, "env-knob-registry");
    assert_eq!(c.findings.len(), 2, "{:?}", c.findings);
    assert!(c
        .findings
        .iter()
        .any(|f| f.file == "crates/foo/src/lib.rs"
            && f.message.contains("FIXTURE_UNDOCUMENTED_KNOB")));
    assert!(c
        .findings
        .iter()
        .any(|f| f.file == "README.md" && f.message.contains("FIXTURE_GHOST_KNOB")));
}

#[test]
fn wire_status_stability_fires_on_gaps_and_drift() {
    let r = run_fixture("wire_status");
    let c = check(&r, "wire-status-stability");
    // Gap (Shed = 2 where 1 is expected), table size != 10, `Missing`
    // documented but absent, `Shed` present but undocumented.
    assert_eq!(c.findings.len(), 4, "{:?}", c.findings);
    assert!(c.findings.iter().any(|f| f.message.contains("dense")));
    assert!(c.findings.iter().any(|f| f.message.contains("Missing")));
    assert!(c.findings.iter().any(|f| f.message.contains("`Shed`")));
}

#[test]
fn no_sleep_in_library_fires_outside_test_modules() {
    let r = run_fixture("no_sleep");
    let c = check(&r, "no-sleep-in-library");
    // The library nap fires; the identical call in #[cfg(test)] does not.
    assert_eq!(c.findings.len(), 1, "{:?}", c.findings);
    assert_eq!(c.findings[0].file, "crates/foo/src/lib.rs");
    assert_eq!(c.findings[0].line, 8);
}

#[test]
fn vendored_deps_only_fires_on_registry_deps() {
    let r = run_fixture("vendored_deps");
    let c = check(&r, "vendored-deps-only");
    // `serde` inline and `tokio` as a sub-table; `lp` (path) and
    // `proptest` (workspace) pass.
    assert_eq!(c.findings.len(), 2, "{:?}", c.findings);
    assert!(c.findings.iter().any(|f| f.message.contains("`serde`")));
    assert!(c.findings.iter().any(|f| f.message.contains("`tokio`")));
}

#[test]
fn report_json_lists_every_check_as_run() {
    let r = run_fixture("no_sleep");
    let json = r.to_json();
    for (id, _, _) in conformance::checks::REGISTRY {
        assert!(
            json.contains(&format!("\"id\": \"{id}\"")),
            "check `{id}` missing from JSON report"
        );
    }
    assert_eq!(
        json.matches("\"status\": \"run\"").count(),
        conformance::checks::REGISTRY.len()
    );
}
