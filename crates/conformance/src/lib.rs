//! `conformance` — the repo's invariants, checked as code.
//!
//! The reproduction's correctness story rests on a set of documented
//! rules (ARCHITECTURE.md's bit-identity chain, the two sanctioned
//! `unsafe` islands, the no-FMA rule, the dense 0..=9 wire-status table,
//! README's tuning-knob registry, the offline vendored-deps rule). With
//! six crates and a network edge, prose invariants no longer scale to
//! reviewer memory — this crate turns each one into a named static check
//! that runs on every PR:
//!
//! | id | invariant |
//! |---|---|
//! | `unsafe-islands` | `unsafe` only in `lp::simd`, `dnn::tensor::microkernel`, the `serve::pool` scope-transmute; crate roots carry `deny`/`forbid(unsafe_code)` |
//! | `no-fma` | no `mul_add`/`fma` in `lp`/`dnn` (single rounding breaks bit-identity) |
//! | `atomic-ordering-audit` | every `Ordering::*` use justified by an `// ordering:` comment |
//! | `env-knob-registry` | env keys in code ⇔ README tuning table, both directions |
//! | `wire-status-stability` | `serve::net` status codes dense 0..=9, matching ARCHITECTURE.md |
//! | `no-sleep-in-library` | no `thread::sleep` outside `#[cfg(test)]`/benches/allowlist |
//! | `vendored-deps-only` | every manifest dependency is a path/workspace dep |
//!
//! The tool is dependency-free and offline: instead of `syn` it carries
//! a small comment/string/raw-string-aware lexer ([`lexer`]), so code
//! inside strings and comments can never trip a check. Any finding can
//! be waived at its site with `// conformance: allow(<check-id>)` on the
//! same line or in the comment block directly above — waivers are
//! counted in the report, never silent.
//!
//! Run it with `cargo run -p conformance --release`; it prints findings
//! and writes the machine-readable `LINT_report.json` at the workspace
//! root, exiting nonzero if anything survived suppression.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod lexer;
pub mod report;
pub mod workspace;

use report::{CheckReport, Report};
use std::io;
use std::path::Path;
use workspace::Workspace;

/// Run every registered check over the workspace at `root`, applying
/// inline suppressions, and return the full report.
pub fn run(root: &Path) -> io::Result<Report> {
    let ws = Workspace::load(root)?;
    let mut out = Vec::with_capacity(checks::REGISTRY.len());
    for (id, description, f) in checks::REGISTRY {
        let raw = f(&ws);
        let needle = format!("conformance: allow({id})");
        let mut findings = Vec::new();
        let mut suppressed = 0usize;
        for finding in raw {
            if finding.line > 0 && is_suppressed(&ws, &finding.file, finding.line, &needle) {
                suppressed += 1;
            } else {
                findings.push(finding);
            }
        }
        out.push(CheckReport {
            id,
            description,
            findings,
            suppressed,
        });
    }
    Ok(Report {
        root: root.display().to_string(),
        files_scanned: ws.files.len(),
        manifests_scanned: ws.manifests.len(),
        checks: out,
    })
}

/// A finding is suppressed when the directive appears on the finding's
/// line or in the comment run ending on the line directly above it.
fn is_suppressed(ws: &Workspace, file: &str, line: u32, needle: &str) -> bool {
    match ws.file(file) {
        Some(f) => {
            f.lex.comment_on_line_contains(line, needle)
                || f.lex
                    .comment_run_ending_at_contains(line.saturating_sub(1), needle)
        }
        None => false,
    }
}
