//! Findings, per-check reports, and the hand-rolled `LINT_report.json`
//! writer (no serde — the tool is dependency-free by design).

/// One violation of one check, anchored to a file (and usually a line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Root-relative path of the offending file.
    pub file: String,
    /// 1-based line number; `0` for file-level findings (e.g. a missing
    /// crate-root lint attribute).
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// Convenience constructor.
    pub fn new(file: impl Into<String>, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

/// The outcome of running one named check over the workspace.
#[derive(Debug)]
pub struct CheckReport {
    /// Stable check id (also the suppression key:
    /// `conformance: allow(<id>)`).
    pub id: &'static str,
    /// One-line description of the invariant the check enforces.
    pub description: &'static str,
    /// Surviving (unsuppressed) findings.
    pub findings: Vec<Finding>,
    /// How many findings were silenced by an inline
    /// `conformance: allow(...)` directive.
    pub suppressed: usize,
}

/// The whole run: every check's report plus scan-size counters.
#[derive(Debug)]
pub struct Report {
    /// Root the scan ran over (as given, for the JSON record).
    pub root: String,
    /// Number of first-party `.rs` files lexed.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
    /// Per-check outcomes, in registry order.
    pub checks: Vec<CheckReport>,
}

impl Report {
    /// Total surviving findings across all checks.
    pub fn findings_total(&self) -> usize {
        self.checks.iter().map(|c| c.findings.len()).sum()
    }

    /// Total suppressed findings across all checks.
    pub fn suppressed_total(&self) -> usize {
        self.checks.iter().map(|c| c.suppressed).sum()
    }

    /// Render the machine-readable report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"tool\": \"conformance\",\n");
        s.push_str(&format!("  \"root\": {},\n", json_str(&self.root)));
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"manifests_scanned\": {},\n",
            self.manifests_scanned
        ));
        s.push_str(&format!(
            "  \"findings_total\": {},\n",
            self.findings_total()
        ));
        s.push_str(&format!(
            "  \"suppressed_total\": {},\n",
            self.suppressed_total()
        ));
        s.push_str("  \"checks\": [\n");
        for (i, c) in self.checks.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"id\": {},\n", json_str(c.id)));
            s.push_str(&format!(
                "      \"description\": {},\n",
                json_str(c.description)
            ));
            s.push_str("      \"status\": \"run\",\n");
            s.push_str(&format!("      \"suppressed\": {},\n", c.suppressed));
            s.push_str(&format!(
                "      \"findings_count\": {},\n",
                c.findings.len()
            ));
            s.push_str("      \"findings\": [");
            for (j, f) in c.findings.iter().enumerate() {
                s.push_str("\n        {");
                s.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
                s.push_str(&format!("\"line\": {}, ", f.line));
                s.push_str(&format!("\"message\": {}", json_str(&f.message)));
                s.push('}');
                if j + 1 < c.findings.len() {
                    s.push(',');
                }
            }
            if !c.findings.is_empty() {
                s.push_str("\n      ");
            }
            s.push_str("]\n");
            s.push_str("    }");
            if i + 1 < self.checks.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
