//! Workspace discovery: find the root, walk the source tree, lex every
//! first-party `.rs` file, and load the docs + manifests the checks read.
//!
//! What counts as "the workspace source" is deliberate:
//!
//! * `src/`, `tests/`, `examples/`, `benches/` at the root and under
//!   every `crates/*` member — first-party code, fully checked;
//! * `vendor/` is **excluded** from `.rs` scanning (those crates are
//!   API stand-ins for third-party code, not ours to lint) but its
//!   `Cargo.toml`s are still collected for the `vendored-deps-only`
//!   manifest check;
//! * any directory named `fixtures` is excluded — that is where the
//!   conformance test suite keeps its seeded-violation files, which
//!   must never count against the real tree;
//! * `target/` and hidden directories are excluded.

use crate::lexer::{self, Lexed};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lexed first-party source file.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// The lexed token/comment streams.
    pub lex: Lexed,
}

/// Everything the checks need, loaded once.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// Every first-party `.rs` file, lexed, sorted by path.
    pub files: Vec<SourceFile>,
    /// Every `Cargo.toml` (root, members, **and** vendor), as
    /// `(relative path, content)`, sorted by path.
    pub manifests: Vec<(String, String)>,
    /// `README.md` content, if present.
    pub readme: Option<String>,
    /// `ARCHITECTURE.md` content, if present.
    pub architecture: Option<String>,
}

impl Workspace {
    /// Load the workspace rooted at `root`.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();
        walk(root, root, &mut files, &mut manifests)?;
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        manifests.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            manifests,
            readme: fs::read_to_string(root.join("README.md")).ok(),
            architecture: fs::read_to_string(root.join("ARCHITECTURE.md")).ok(),
        })
    }

    /// Find the lexed file with exactly this root-relative path.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Directories never descended into.
fn skip_dir(name: &str) -> bool {
    name == "target" || name == "fixtures" || name.starts_with('.')
}

fn walk(
    root: &Path,
    dir: &Path,
    files: &mut Vec<SourceFile>,
    manifests: &mut Vec<(String, String)>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let rel = rel_path(root, &path);
        let in_vendor = rel.starts_with("vendor/") || rel == "vendor";
        if path.is_dir() {
            if skip_dir(&name) {
                continue;
            }
            walk(root, &path, files, manifests)?;
        } else if name == "Cargo.toml" {
            manifests.push((rel, fs::read_to_string(&path)?));
        } else if name.ends_with(".rs") && !in_vendor {
            let src = fs::read_to_string(&path)?;
            files.push(SourceFile {
                rel,
                lex: lexer::lex(&src),
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walk upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` — the root the binary lints when invoked from
/// anywhere inside the tree.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}
