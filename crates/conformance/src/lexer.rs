//! A small Rust lexer, exactly deep enough for invariant checking.
//!
//! The conformance checks need to distinguish *code* from *text*: an
//! `unsafe` inside a doc comment or a `"thread::sleep"` inside a string
//! literal must never trip a check, while the same token in code must.
//! Pulling in `syn` is not an option (the build is offline and the tool
//! must stay dependency-free), so this module hand-rolls the lexical
//! subset of Rust the checks care about:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), collected separately so checks can look for
//!   justification / suppression directives;
//! * cooked strings (`"…"` with escapes), byte strings (`b"…"`), and
//!   raw (byte) strings with arbitrary hash fences (`r#"…"#`,
//!   `br##"…"##`) — the content is kept so checks can read env-var keys;
//! * char literals vs lifetimes vs loop labels (`'a'` / `'a` /
//!   `'outer:`), including escaped chars (`'\''`, `'\u{1F600}'`);
//! * raw identifiers (`r#type`), plain identifiers, numbers (kept as
//!   text so enum discriminants can be read back), and single-char
//!   punctuation.
//!
//! The output is a flat token stream plus a comment list, both carrying
//! 1-based line numbers. No spans, no trees: checks pattern-match over
//! token windows and correlate with comment lines.

/// One lexical token, with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is (and its text, where checks need it).
    pub kind: Tok,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// Token kinds. Only the distinctions the checks use are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `Ordering`, `mul_add`, …).
    Ident(String),
    /// String literal — cooked, byte, raw, or raw-byte — with its
    /// *source* content (escape sequences left as written; env-var keys
    /// and doc-table strings never contain escapes).
    Str(String),
    /// Numeric literal, kept as source text (`0`, `0x1F`, `1_000u64`).
    Num(String),
    /// Char literal (`'a'`, `'\''`). Content is not needed by any check.
    CharLit,
    /// Lifetime or loop label (`'a`, `'outer`). Distinguished from
    /// [`Tok::CharLit`] by the missing closing quote.
    Lifetime(String),
    /// Any other single character of punctuation (`::` is two `:`).
    Punct(char),
}

/// A comment — line or block — with its line span and raw text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// The comment text, including its `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// True if some comment overlapping `line` contains `needle`.
    pub fn comment_on_line_contains(&self, line: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line && c.text.contains(needle))
    }

    /// True if a comment run ending exactly on `line` (i.e. the comment
    /// block immediately above a statement on `line + 1`) contains
    /// `needle`. A "run" is a sequence of comments on consecutive lines;
    /// the needle may appear anywhere in the run.
    pub fn comment_run_ending_at_contains(&self, line: u32, needle: &str) -> bool {
        // Find the comment ending on `line`, then extend upward through
        // comments on consecutive preceding lines.
        let mut end = match self.comments.iter().rposition(|c| c.end_line == line) {
            Some(i) => i,
            None => return false,
        };
        if self.comments[end].text.contains(needle) {
            return true;
        }
        while end > 0 {
            let prev = &self.comments[end - 1];
            if prev.end_line + 1 != self.comments[end].line {
                break;
            }
            end -= 1;
            if prev.text.contains(needle) {
                return true;
            }
        }
        false
    }
}

/// Lex `src` into tokens and comments. Never fails: unterminated
/// constructs consume to end of input (the checks then see whatever was
/// lexed — good enough for a linter that runs on compiling code).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! bump_lines {
        ($slice:expr) => {
            line += $slice.iter().filter(|&&c| c == b'\n').count() as u32
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment: track depth.
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: src[start..i].to_string(),
                });
            }
            b'"' => {
                let start_line = line;
                let (content, end) = cooked_string(src, i);
                bump_lines!(&b[i..end]);
                out.tokens.push(Token {
                    kind: Tok::Str(content),
                    line: start_line,
                });
                i = end;
            }
            b'\'' => {
                let start_line = line;
                let (tok, end) = quote_token(src, i);
                bump_lines!(&b[i..end]);
                out.tokens.push(Token {
                    kind: tok,
                    line: start_line,
                });
                i = end;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        || (b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit()))
                {
                    // `0..9` must stay `0` `..` `9`: only eat a dot when it
                    // is followed by a digit AND the previous char was not
                    // already a consumed dot (one fractional dot max).
                    if b[i] == b'.' && src[start..i].contains('.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Num(src[start..i].to_string()),
                    line,
                });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                // Possible string prefixes first: r"", r#"", b"", br"",
                // rb is not a thing; c"" / cr#""# exist since 1.77.
                if let Some((content, end)) = raw_or_prefixed_string(src, i) {
                    let start_line = line;
                    bump_lines!(&b[i..end]);
                    out.tokens.push(Token {
                        kind: Tok::Str(content),
                        line: start_line,
                    });
                    i = end;
                    continue;
                }
                // Raw identifier r#type?
                let start = if b[i] == b'r' && i + 1 < b.len() && b[i + 1] == b'#' {
                    i += 2;
                    i
                } else {
                    i
                };
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: Tok::Punct(c as char),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Lex a cooked (possibly byte) string starting at the opening `"` at
/// byte `i`. Returns (content-without-quotes, index past the closing
/// quote). Escapes are skipped, not interpreted.
fn cooked_string(src: &str, i: usize) -> (String, usize) {
    let b = src.as_bytes();
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j = (j + 2).min(b.len()),
            b'"' => return (src[i + 1..j].to_string(), j + 1),
            _ => j += 1,
        }
    }
    (src[i + 1..j].to_string(), j)
}

/// At a `'`: decide char literal vs lifetime/label and lex it.
/// Returns the token and the index past it.
fn quote_token(src: &str, i: usize) -> (Tok, usize) {
    let b = src.as_bytes();
    debug_assert_eq!(b[i], b'\'');
    // Escaped char literal: '\x41', '\'', '\u{…}'. Skip the backslash
    // and the character it escapes unconditionally (that covers '\'' and
    // '\\'), then scan to the closing quote.
    if i + 1 < b.len() && b[i + 1] == b'\\' {
        let mut j = (i + 3).min(b.len());
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return (Tok::CharLit, (j + 1).min(b.len()));
    }
    // `'X'` where X is any single byte (or the lead of a multibyte char):
    // find the char boundary after the first char and check for `'`.
    let rest = &src[i + 1..];
    if let Some(ch) = rest.chars().next() {
        let after = i + 1 + ch.len_utf8();
        if after < b.len() && b[after] == b'\'' {
            // One char then a closing quote → char literal. (A lifetime
            // followed by a char literal, `'a''b'`, cannot appear in
            // valid Rust without intervening tokens.)
            return (Tok::CharLit, after + 1);
        }
        if ch == '_' || ch.is_alphabetic() {
            // Lifetime or label: consume identifier chars.
            let mut j = i + 1;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            return (Tok::Lifetime(src[i + 1..j].to_string()), j);
        }
    }
    // Lone quote (invalid Rust); emit as punctuation to keep going.
    (Tok::Punct('\''), i + 1)
}

/// If byte `i` starts a raw / prefixed string (`r"…"`, `r#"…"#`,
/// `b"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`), lex it and return
/// (content, index past the end). Otherwise `None` (plain identifier).
fn raw_or_prefixed_string(src: &str, i: usize) -> Option<(String, usize)> {
    let b = src.as_bytes();
    let mut j = i;
    // Consume the prefix letters (at most two of b/r/c in valid combos).
    let mut saw_r = false;
    while j < b.len() && (b[j] == b'b' || b[j] == b'r' || b[j] == b'c') && j - i < 2 {
        if b[j] == b'r' {
            saw_r = true;
        }
        j += 1;
    }
    if j == i {
        return None;
    }
    if saw_r {
        // Count hash fence.
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return None; // raw identifier (r#foo) or plain ident — not ours
        }
        let content_start = j + 1;
        // Scan for `"` followed by exactly-or-more `hashes` hashes.
        let mut k = content_start;
        while k < b.len() {
            if b[k] == b'"' {
                let mut h = 0usize;
                while k + 1 + h < b.len() && b[k + 1 + h] == b'#' && h < hashes {
                    h += 1;
                }
                if h == hashes {
                    return Some((src[content_start..k].to_string(), k + 1 + hashes));
                }
            }
            k += 1;
        }
        Some((src[content_start..].to_string(), b.len()))
    } else {
        // b"…" / c"…": cooked string with a one-letter prefix.
        if j < b.len() && b[j] == b'"' {
            let (content, end) = cooked_string(src, j);
            Some((content, end))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<&str> {
        l.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_code_like_text() {
        let l = lex(r#"let s = "unsafe { thread::sleep } // not a comment";"#);
        assert_eq!(idents(&l), ["let", "s"]);
        assert!(l.comments.is_empty());
        assert!(matches!(&l.tokens[3].kind, Tok::Str(s) if s.contains("unsafe")));
    }

    #[test]
    fn comments_hide_code_like_text() {
        let l = lex("// unsafe mul_add\n/* Ordering::SeqCst */\nfn f() {}");
        assert_eq!(idents(&l), ["fn", "f"]);
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn g() {}");
        assert_eq!(idents(&l), ["fn", "g"]);
        assert_eq!(l.comments.len(), 1);
    }
}
