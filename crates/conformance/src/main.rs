//! The `conformance` binary: lint the workspace, print findings, write
//! `LINT_report.json`, exit nonzero if anything fired.
//!
//! ```text
//! conformance [--root <dir>] [--report <file>|--no-report] [--quiet]
//! ```
//!
//! With no flags it finds the workspace root by walking up from the
//! current directory (so `cargo run -p conformance --release` works from
//! anywhere in the tree) and writes the report next to the root
//! `Cargo.toml`, where CI uploads it as an artifact.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut write_report = true;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--no-report" => write_report = false,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!(
                    "conformance — invariants-as-code linter\n\n\
                     USAGE: conformance [--root <dir>] [--report <file>|--no-report] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("conformance: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| conformance::workspace::find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("conformance: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    let report = match conformance::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conformance: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if !quiet {
        for c in &report.checks {
            let badge = if c.findings.is_empty() { "ok " } else { "FAIL" };
            println!(
                "[{badge}] {:<24} findings: {:<3} suppressed: {}",
                c.id,
                c.findings.len(),
                c.suppressed
            );
            for f in &c.findings {
                if f.line > 0 {
                    println!("       {}:{}: {}", f.file, f.line, f.message);
                } else {
                    println!("       {}: {}", f.file, f.message);
                }
            }
        }
        println!(
            "conformance: {} files + {} manifests scanned, {} finding(s), {} suppressed",
            report.files_scanned,
            report.manifests_scanned,
            report.findings_total(),
            report.suppressed_total()
        );
    }

    if write_report {
        let path = report_path.unwrap_or_else(|| root.join("LINT_report.json"));
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("conformance: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            println!("conformance: report written to {}", path.display());
        }
    }

    if report.findings_total() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
