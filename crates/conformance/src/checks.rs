//! The seven invariant checks, each enforcing one documented repo rule.
//!
//! Every check is a pure function `fn(&Workspace) -> Vec<Finding>` and is
//! registered in [`REGISTRY`] under a stable id. A finding can be
//! silenced at its site with an inline directive on the same line or in
//! the comment block immediately above:
//!
//! ```text
//! // conformance: allow(<check-id>) — reason
//! ```
//!
//! (suppression is applied by the runner in `lib.rs`, which also counts
//! what it silenced — the report never hides that something was waived).

use crate::lexer::{Tok, Token};
use crate::report::Finding;
use crate::workspace::Workspace;

/// A registered check: `(id, one-line description, implementation)`.
pub type Check = (&'static str, &'static str, fn(&Workspace) -> Vec<Finding>);

/// All checks, in report order.
pub const REGISTRY: &[Check] = &[
    (
        "unsafe-islands",
        "`unsafe` only inside the sanctioned islands (lp::simd, \
         dnn::tensor::microkernel, the serve::pool scope-transmute); every \
         crate root carries deny(unsafe_code)/forbid(unsafe_code)",
        unsafe_islands,
    ),
    (
        "no-fma",
        "no mul_add/fma in lp or dnn kernel code — fused single rounding \
         would break the cross-tier bit-identity chain",
        no_fma,
    ),
    (
        "atomic-ordering-audit",
        "every atomic memory-ordering use in library code carries an \
         `// ordering:` justification on the same or preceding line",
        atomic_ordering_audit,
    ),
    (
        "env-knob-registry",
        "every env-var key read by library/bench code appears in README's \
         tuning-knob table, and every env row there is backed by code",
        env_knob_registry,
    ),
    (
        "wire-status-stability",
        "serve::net wire status codes are dense 0..=9 and match \
         ARCHITECTURE.md's status table name-for-name",
        wire_status_stability,
    ),
    (
        "no-sleep-in-library",
        "no thread::sleep in library code outside #[cfg(test)] modules \
         (bench harness code and explicitly allowed sites excepted)",
        no_sleep_in_library,
    ),
    (
        "vendored-deps-only",
        "every dependency in every workspace manifest is a path (or \
         workspace-inherited) dep — the build has no registry access",
        vendored_deps_only,
    ),
];

// ---------------------------------------------------------------------------
// token-stream helpers

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

fn str_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// Index of the token after the `{ … }` group opening at `open` (which
/// must be a `{`), i.e. one past the matching `}`. Returns `toks.len()`
/// on unbalanced input.
fn skip_braces(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Index one past the `]` matching the `[` at `open`.
fn skip_brackets(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Token-index ranges (half-open) of the bodies of `mod` items named
/// `name` (e.g. the sanctioned `microkernel` island).
fn mod_spans(toks: &[Token], name: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        if ident_at(toks, i) == Some("mod")
            && ident_at(toks, i + 1) == Some(name)
            && punct_at(toks, i + 2, '{')
        {
            spans.push((i + 2, skip_braces(toks, i + 2)));
        }
    }
    spans
}

/// Token-index ranges of `#[cfg(test)] mod … { … }` bodies, including
/// any further attributes between the cfg and the `mod` keyword.
fn cfg_test_mod_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_cfg_test = punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '[')
            && ident_at(toks, i + 2) == Some("cfg")
            && punct_at(toks, i + 3, '(')
            && ident_at(toks, i + 4) == Some("test")
            && punct_at(toks, i + 5, ')')
            && punct_at(toks, i + 6, ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further `#[…]` attributes on the same item.
        while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            j = skip_brackets(toks, j + 1);
        }
        if ident_at(toks, j) == Some("pub") {
            j += 1;
        }
        if ident_at(toks, j) == Some("mod") && punct_at(toks, j + 2, '{') {
            spans.push((j + 2, skip_braces(toks, j + 2)));
        }
        i += 7;
    }
    spans
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| a <= i && i < b)
}

/// Library source of member crates: `crates/<c>/src/**`.
fn is_crate_src(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/")
}

// ---------------------------------------------------------------------------
// check 1: unsafe-islands

/// Files in which `unsafe` is sanctioned wholesale (module-scoped
/// islands are handled separately; the serve::pool transmute carries an
/// inline `conformance: allow(unsafe-islands)` at its one site).
const UNSAFE_WHOLE_FILE_ISLANDS: &[&str] = &["crates/lp/src/simd.rs"];

fn unsafe_islands(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if UNSAFE_WHOLE_FILE_ISLANDS.contains(&f.rel.as_str()) {
            continue;
        }
        let toks = &f.lex.tokens;
        // dnn's island is one module, not the whole tensor file.
        let island_spans = if f.rel == "crates/dnn/src/tensor.rs" {
            mod_spans(toks, "microkernel")
        } else {
            Vec::new()
        };
        for (i, t) in toks.iter().enumerate() {
            if matches!(&t.kind, Tok::Ident(s) if s == "unsafe") && !in_spans(&island_spans, i) {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    "`unsafe` outside the sanctioned islands (lp::simd, \
                     dnn::tensor::microkernel, serve::pool scope-transmute)",
                ));
            }
        }
    }
    // Every crate root must opt out of unsafe at the lint level.
    for f in &ws.files {
        let is_root = f.rel == "src/lib.rs"
            || (f.rel.starts_with("crates/")
                && f.rel.ends_with("/src/lib.rs")
                && f.rel.matches('/').count() == 3);
        if is_root && !has_unsafe_code_lint(&f.lex.tokens) {
            out.push(Finding::new(
                &f.rel,
                0,
                "crate root missing #![deny(unsafe_code)] / #![forbid(unsafe_code)]",
            ));
        }
    }
    out
}

fn has_unsafe_code_lint(toks: &[Token]) -> bool {
    (0..toks.len()).any(|i| {
        punct_at(toks, i, '#')
            && punct_at(toks, i + 1, '!')
            && punct_at(toks, i + 2, '[')
            && matches!(ident_at(toks, i + 3), Some("deny") | Some("forbid"))
            && punct_at(toks, i + 4, '(')
            && ident_at(toks, i + 5) == Some("unsafe_code")
            && punct_at(toks, i + 6, ')')
            && punct_at(toks, i + 7, ']')
    })
}

// ---------------------------------------------------------------------------
// check 2: no-fma

fn no_fma(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !(f.rel.starts_with("crates/lp/src") || f.rel.starts_with("crates/dnn/src")) {
            continue;
        }
        for t in &f.lex.tokens {
            if matches!(&t.kind, Tok::Ident(s) if s == "mul_add" || s == "fma") {
                out.push(Finding::new(
                    &f.rel,
                    t.line,
                    "fused multiply-add in kernel code: single rounding breaks \
                     the scalar/blocked/SIMD bit-identity chain",
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 3: atomic-ordering-audit

const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn atomic_ordering_audit(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !(is_crate_src(&f.rel) || f.rel.starts_with("src/")) {
            continue;
        }
        let toks = &f.lex.tokens;
        // Collect the lines holding `Ordering::<variant>` uses. The
        // variant-name filter keeps `cmp::Ordering::{Less,Equal,Greater}`
        // out of scope — only the atomic orderings are audited, and only
        // in production code (#[cfg(test)] modules assert on counters,
        // they don't synchronize anything).
        let test_spans = cfg_test_mod_spans(toks);
        let mut site_lines: Vec<u32> = Vec::new();
        for i in 0..toks.len() {
            if ident_at(toks, i) == Some("Ordering")
                && punct_at(toks, i + 1, ':')
                && punct_at(toks, i + 2, ':')
                && matches!(ident_at(toks, i + 3), Some(v) if ATOMIC_ORDERINGS.contains(&v))
                && !in_spans(&test_spans, i)
            {
                site_lines.push(toks[i + 3].line);
            }
        }
        site_lines.sort_unstable();
        site_lines.dedup();
        // A line is justified by an `ordering:` comment on the line, by a
        // comment run ending on the previous line, or by chaining off an
        // adjacent justified site line (multi-line calls such as
        // `fetch_update(Ordering::AcqRel, Ordering::Acquire, …)` share
        // one justification).
        let mut prev: Option<(u32, bool)> = None;
        for &line in &site_lines {
            let direct = f.lex.comment_on_line_contains(line, "ordering:")
                || f.lex
                    .comment_run_ending_at_contains(line.saturating_sub(1), "ordering:");
            let ok = direct || matches!(prev, Some((l, true)) if l + 1 == line);
            if !ok {
                out.push(Finding::new(
                    &f.rel,
                    line,
                    "atomic Ordering use without an `// ordering:` justification \
                     comment on the same or preceding line",
                ));
            }
            prev = Some((line, ok));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 4: env-knob-registry

/// Functions whose first string-literal argument is an env-var key.
const ENV_READ_FNS: &[&str] = &["var", "var_os", "env_usize"];

fn looks_like_env_key(s: &str) -> bool {
    s.len() >= 4
        && s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Library/bench code that may read env knobs (tests and examples are
/// free to set/read whatever they like).
fn env_scope(rel: &str) -> bool {
    is_crate_src(rel) || rel.starts_with("src/") || rel.contains("/benches/")
}

fn env_knob_registry(ws: &Workspace) -> Vec<Finding> {
    // 1. Harvest keys from code: direct `env::var("KEY")`-style reads and
    //    `const SOME_ENV: &str = "KEY"` registrations (the repo idiom for
    //    documented knobs — the constant is then passed to env::var).
    let mut code_keys: Vec<(String, String, u32)> = Vec::new(); // key, file, line
    for f in ws.files.iter().filter(|f| env_scope(&f.rel)) {
        let toks = &f.lex.tokens;
        for i in 0..toks.len() {
            if matches!(ident_at(toks, i), Some(id) if ENV_READ_FNS.contains(&id))
                && punct_at(toks, i + 1, '(')
            {
                if let Some(key) = str_at(toks, i + 2) {
                    if looks_like_env_key(key) {
                        code_keys.push((key.to_string(), f.rel.clone(), toks[i + 2].line));
                    }
                }
            }
            if ident_at(toks, i) == Some("const")
                && matches!(ident_at(toks, i + 1), Some(name) if name.ends_with("_ENV"))
            {
                // First string literal before the terminating `;`.
                let mut j = i + 2;
                while j < toks.len() && !punct_at(toks, j, ';') {
                    if let Some(key) = str_at(toks, j) {
                        if looks_like_env_key(key) {
                            code_keys.push((key.to_string(), f.rel.clone(), toks[j].line));
                        }
                        break;
                    }
                    j += 1;
                }
            }
        }
    }

    // 2. Harvest keys from README's tuning table: rows whose "Where"
    //    column says env, expanding `PREFIX_{A,B}_SUFFIX` brace patterns.
    let mut readme_keys: Vec<(String, u32)> = Vec::new();
    let readme = ws.readme.as_deref().unwrap_or("");
    for (ln, line) in readme.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cols: Vec<&str> = line.trim_matches('|').split('|').collect();
        if cols.len() < 2 {
            continue;
        }
        let where_col = cols[1];
        let is_env_row = where_col
            .split(|c: char| !c.is_ascii_alphanumeric())
            .any(|w| w == "env");
        if !is_env_row {
            continue;
        }
        for chunk in backticked(cols[0]) {
            for key in expand_braces(&chunk) {
                if looks_like_env_key(&key) {
                    readme_keys.push((key, ln as u32 + 1));
                }
            }
        }
    }

    let mut out = Vec::new();
    if ws.readme.is_none() {
        out.push(Finding::new(
            "README.md",
            0,
            "README.md not found — the tuning-knob registry is unverifiable",
        ));
        return out;
    }
    // 3. Drift in either direction is a finding.
    let mut reported: Vec<&str> = Vec::new();
    for (key, file, line) in &code_keys {
        if !readme_keys.iter().any(|(k, _)| k == key) && !reported.contains(&key.as_str()) {
            reported.push(key);
            out.push(Finding::new(
                file.clone(),
                *line,
                format!("env knob `{key}` is read here but missing from README's tuning table"),
            ));
        }
    }
    for (key, line) in &readme_keys {
        if !code_keys.iter().any(|(k, _, _)| k == key) {
            out.push(Finding::new(
                "README.md",
                *line,
                format!("README tuning table lists `{key}` but no library/bench code reads it"),
            ));
        }
    }
    out
}

/// The backtick-quoted chunks of a Markdown table cell.
fn backticked(cell: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = cell;
    while let Some(a) = rest.find('`') {
        let after = &rest[a + 1..];
        match after.find('`') {
            Some(b) => {
                out.push(after[..b].to_string());
                rest = &after[b + 1..];
            }
            None => break,
        }
    }
    out
}

/// Expand one `PREFIX_{A,B}_SUFFIX` brace group (the README idiom for
/// families of knobs). Non-brace input passes through unchanged.
fn expand_braces(s: &str) -> Vec<String> {
    match (s.find('{'), s.find('}')) {
        (Some(a), Some(b)) if a < b => {
            let (prefix, rest) = (&s[..a], &s[a + 1..b]);
            let suffix = &s[b + 1..];
            rest.split(',')
                .flat_map(|alt| expand_braces(&format!("{prefix}{}{suffix}", alt.trim())))
                .collect()
        }
        _ => vec![s.to_string()],
    }
}

// ---------------------------------------------------------------------------
// check 5: wire-status-stability

fn wire_status_stability(ws: &Workspace) -> Vec<Finding> {
    const NET_RS: &str = "crates/serve/src/net.rs";
    let mut out = Vec::new();
    let Some(f) = ws.file(NET_RS) else {
        return out; // no network edge in this tree (fixture roots)
    };
    let toks = &f.lex.tokens;
    // Parse `enum Status { Name = N, … }`.
    let mut variants: Vec<(String, u32, u32)> = Vec::new(); // name, code, line
    for i in 0..toks.len() {
        if ident_at(toks, i) == Some("enum")
            && ident_at(toks, i + 1) == Some("Status")
            && punct_at(toks, i + 2, '{')
        {
            let end = skip_braces(toks, i + 2);
            let mut j = i + 3;
            while j + 2 < end {
                if let (Some(name), true, Some(Tok::Num(n))) = (
                    ident_at(toks, j),
                    punct_at(toks, j + 1, '='),
                    toks.get(j + 2).map(|t| &t.kind),
                ) {
                    if let Ok(code) = n.parse::<u32>() {
                        variants.push((name.to_string(), code, toks[j].line));
                    }
                    j += 3;
                } else {
                    j += 1;
                }
            }
            break;
        }
    }
    if variants.is_empty() {
        out.push(Finding::new(
            NET_RS,
            0,
            "could not parse `enum Status` with explicit discriminants",
        ));
        return out;
    }
    // Density: discriminants must be exactly 0..=len-1 in declaration
    // order, and the table is pinned at 10 codes (0..=9) — growing the
    // protocol is a conscious act that updates this check.
    for (idx, (name, code, line)) in variants.iter().enumerate() {
        if *code != idx as u32 {
            out.push(Finding::new(
                NET_RS,
                *line,
                format!("wire status `{name}` has discriminant {code}, expected {idx} (dense 0..)"),
            ));
        }
    }
    if variants.len() != 10 {
        out.push(Finding::new(
            NET_RS,
            variants.last().map(|v| v.2).unwrap_or(0),
            format!(
                "wire status table has {} codes, expected the documented dense 0..=9",
                variants.len()
            ),
        ));
    }
    // Cross-check ARCHITECTURE.md's `| code | `Name` |` table.
    let arch = ws.architecture.as_deref().unwrap_or("");
    let mut doc_rows: Vec<(u32, String, u32)> = Vec::new();
    for (ln, line) in arch.lines().enumerate() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cols: Vec<&str> = line.trim_matches('|').split('|').collect();
        if cols.len() < 2 {
            continue;
        }
        if let Ok(code) = cols[0].trim().parse::<u32>() {
            let names = backticked(cols[1]);
            if let Some(name) = names.first() {
                doc_rows.push((code, name.clone(), ln as u32 + 1));
            }
        }
    }
    if doc_rows.is_empty() {
        out.push(Finding::new(
            "ARCHITECTURE.md",
            0,
            "no wire-status table (| code | `Name` | …) found to check against serve::net",
        ));
        return out;
    }
    for (code, name, ln) in &doc_rows {
        match variants.iter().find(|(_, c, _)| c == code) {
            Some((vname, _, _)) if vname == name => {}
            Some((vname, _, _)) => out.push(Finding::new(
                "ARCHITECTURE.md",
                *ln,
                format!("status {code} documented as `{name}` but serve::net names it `{vname}`"),
            )),
            None => out.push(Finding::new(
                "ARCHITECTURE.md",
                *ln,
                format!("status {code} (`{name}`) documented but absent from serve::net"),
            )),
        }
    }
    for (vname, code, line) in &variants {
        if !doc_rows.iter().any(|(c, _, _)| c == code) {
            out.push(Finding::new(
                NET_RS,
                *line,
                format!("wire status `{vname}` = {code} is not documented in ARCHITECTURE.md"),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 6: no-sleep-in-library

fn no_sleep_in_library(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        // Library source only: tests may pace themselves freely, and the
        // bench crate is harness code whose whole job is shaping load.
        if !is_crate_src(&f.rel) || f.rel.starts_with("crates/bench/") {
            continue;
        }
        let toks = &f.lex.tokens;
        let test_spans = cfg_test_mod_spans(toks);
        for i in 0..toks.len() {
            if ident_at(toks, i) == Some("thread")
                && punct_at(toks, i + 1, ':')
                && punct_at(toks, i + 2, ':')
                && ident_at(toks, i + 3) == Some("sleep")
                && !in_spans(&test_spans, i)
            {
                out.push(Finding::new(
                    &f.rel,
                    toks[i].line,
                    "thread::sleep in library code outside #[cfg(test)] — \
                     blocking naps hide backpressure; use the documented \
                     allowlist directive only for sanctioned waits",
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// check 7: vendored-deps-only

const DEP_SECTIONS: &[&str] = &["dependencies", "dev-dependencies", "build-dependencies"];

fn is_dep_section(header: &str) -> bool {
    // [dependencies], [dev-dependencies], [workspace.dependencies],
    // [target.'cfg(…)'.dependencies] — but NOT [dependencies.foo]
    // (handled as a single-entry section by the caller).
    let last = header.rsplit('.').next().unwrap_or(header);
    DEP_SECTIONS.contains(&last)
}

fn vendored_deps_only(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for (rel, text) in &ws.manifests {
        let mut in_deps = false;
        // `[dependencies.foo]` sub-table: collect its keys to one entry.
        let mut subtable: Option<(String, u32, bool)> = None; // name, line, ok
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = ln as u32 + 1;
            if line.starts_with('[') && line.ends_with(']') {
                flush_subtable(&mut subtable, rel, &mut out);
                let header = &line[1..line.len() - 1];
                if let Some(prefix) = header_dep_subtable(header) {
                    subtable = Some((prefix.to_string(), lineno, false));
                    in_deps = false;
                } else {
                    in_deps = is_dep_section(header);
                }
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((_, _, ok)) = &mut subtable {
                let key = line.split('=').next().unwrap_or("").trim();
                if key == "path" || (key == "workspace" && line.contains("true")) {
                    *ok = true;
                }
                continue;
            }
            if !in_deps {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            let ok = value.contains("path")
                || value.contains("workspace")
                || key.ends_with(".workspace");
            if !ok {
                out.push(Finding::new(
                    rel.clone(),
                    lineno,
                    format!(
                        "dependency `{}` is not a path/workspace dep — the offline \
                         build has no registry access; vendor it under vendor/",
                        key.split('.').next().unwrap_or(key)
                    ),
                ));
            }
        }
        flush_subtable(&mut subtable, rel, &mut out);
    }
    out
}

/// If `header` is a `[…dependencies.<name>]` sub-table, return `<name>`.
fn header_dep_subtable(header: &str) -> Option<&str> {
    let mut parts = header.split('.').rev();
    let name = parts.next()?;
    let section = parts.next()?;
    if DEP_SECTIONS.contains(&section) {
        Some(name)
    } else {
        None
    }
}

fn flush_subtable(sub: &mut Option<(String, u32, bool)>, rel: &str, out: &mut Vec<Finding>) {
    if let Some((name, line, ok)) = sub.take() {
        if !ok {
            out.push(Finding::new(
                rel,
                line,
                format!(
                    "dependency `{name}` is not a path/workspace dep — the offline \
                     build has no registry access; vendor it under vendor/"
                ),
            ));
        }
    }
}
