//! The four-step genetic-algorithm search of §4 (Fig. 2): candidate
//! initialization, block-wise regeneration (crossover + mutation),
//! diversity-promoting selection, and evaluation / population update.

use crate::activation::{derive_activation_params, SfRule};
use crate::objective::{FitnessEvaluator, ObjectiveKind};
use crate::params::{Candidate, LayerParams};
use dnn::graph::{ForwardTrace, Model, QuantScheme};
use dnn::tensor::Tensor;
use lp::format::LpParams;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serve::pool::par_map_pooled;
use std::ops::Range;
use std::sync::Arc;

/// Search hyper-parameters (§6: K = 20, P = 10, C = 4, B = 4 for CNNs and
/// one attention block for transformers, 5 diversity children, λ = 0.4).
#[derive(Debug, Clone)]
pub struct LpqConfig {
    /// Population size `K`.
    pub population: usize,
    /// Number of passes `P` over all blocks.
    pub passes: usize,
    /// Cycles `C` per block per pass.
    pub cycles: usize,
    /// Block size `B` over weighted layers; `0` uses the model's own block
    /// boundaries (attention blocks for transformers).
    pub block_size: usize,
    /// Diversity-promoting children per update (paper: 5).
    pub diversity_children: usize,
    /// Compression-term exponent `λ`.
    pub lambda: f64,
    /// Contrastive temperature `τ`.
    pub tau: f64,
    /// Scale-factor perturbation radius `η`.
    pub sf_radius: f64,
    /// Restrict `n` to `{2, 4, 8}` for LPA weight packing (§5.1).
    pub hw_constrained: bool,
    /// RNG seed (the whole search is deterministic given the seed).
    pub seed: u64,
    /// Fitness objective.
    pub objective: ObjectiveKind,
    /// Number of calibration images used in fitness evaluation.
    pub calib_size: usize,
    /// Population cap (worst candidates are dropped beyond this).
    pub max_population: usize,
}

impl LpqConfig {
    /// The paper's full search configuration.
    pub fn paper() -> Self {
        LpqConfig {
            population: 20,
            passes: 10,
            cycles: 4,
            block_size: 4,
            diversity_children: 5,
            lambda: 0.4,
            tau: 0.5,
            sf_radius: 0.1,
            hw_constrained: true,
            seed: 7,
            objective: ObjectiveKind::GlobalLocalContrastive,
            calib_size: 128,
            max_population: 40,
        }
    }

    /// A reduced configuration for quick runs and CI (same algorithm,
    /// smaller budgets).
    pub fn quick() -> Self {
        LpqConfig {
            population: 8,
            passes: 2,
            cycles: 1,
            block_size: 8,
            diversity_children: 3,
            calib_size: 32,
            max_population: 16,
            ..Self::paper()
        }
    }

    /// Reads `LPQ_PRESET=paper|quick` from the environment, defaulting to
    /// `quick`.
    pub fn from_env() -> Self {
        match std::env::var("LPQ_PRESET").as_deref() {
            Ok("paper") => Self::paper(),
            _ => Self::quick(),
        }
    }
}

/// The outcome of an LPQ search.
#[derive(Debug, Clone)]
pub struct LpqResult {
    /// Best weight-parameter candidate found (the raw genome).
    pub best: Candidate,
    /// The genome resolved into deployable per-layer LP formats
    /// (saturation-aware scale factors).
    pub weight_params: Vec<lp::format::LpParams>,
    /// Derived activation parameters (one per weighted layer).
    pub activation_params: Vec<LayerParams>,
    /// Parameter-weighted average weight bit-width ("MP4.2"-style).
    pub avg_weight_bits: f64,
    /// Average activation bit-width (IR-size weighted).
    pub avg_activation_bits: f64,
    /// Quantized model size in MB.
    pub model_size_mb: f64,
    /// Best fitness after each population update.
    pub fitness_history: Vec<f64>,
    /// Snapshot of the best candidate after each population update (for
    /// convergence plots).
    pub best_history: Vec<Candidate>,
    /// Total candidate evaluations performed.
    pub evaluations: usize,
}

impl LpqResult {
    /// Builds the full weight + activation [`QuantScheme`] for deployment
    /// evaluation.
    pub fn scheme(&self) -> QuantScheme {
        QuantScheme::new(
            self.weight_params
                .iter()
                .map(|p| Some(Arc::new(*p) as Arc<dyn lp::Quantizer + Send + Sync>))
                .collect(),
            self.activation_params
                .iter()
                .map(|p| Some(Arc::new(p.to_lp()) as Arc<dyn lp::Quantizer + Send + Sync>))
                .collect(),
        )
    }

    /// Builds a weight-only scheme (activations in full precision).
    pub fn weight_scheme(&self) -> QuantScheme {
        QuantScheme::new(
            self.weight_params
                .iter()
                .map(|p| Some(Arc::new(*p) as Arc<dyn lp::Quantizer + Send + Sync>))
                .collect(),
            vec![None; self.weight_params.len()],
        )
    }
}

/// Builds a [`QuantScheme`] from weight parameters and optional activation
/// parameters.
pub fn scheme_from(weights: &Candidate, acts: Option<&[LayerParams]>) -> QuantScheme {
    let to_arc = |p: &LayerParams| -> Option<Arc<dyn lp::Quantizer + Send + Sync>> {
        Some(Arc::new(p.to_lp()))
    };
    QuantScheme::new(
        weights.layers.iter().map(to_arc).collect(),
        match acts {
            Some(a) => a.iter().map(to_arc).collect(),
            None => vec![None; weights.len()],
        },
    )
}

/// The LPQ search engine, bound to a model and calibration data.
pub struct Lpq<'m> {
    model: &'m Model,
    cfg: LpqConfig,
    calib: Vec<Tensor>,
    evaluator: FitnessEvaluator,
    sf_centers: Vec<f64>,
    /// Per-layer `log2(max|w|)` used for saturation-aware sf resolution.
    weight_max_log: Vec<f64>,
    blocks: Vec<Range<usize>>,
    /// Per-layer concatenated FP activations for activation-sf fitting.
    layer_acts: Vec<Tensor>,
    /// Quantized-weight cache shared by every candidate scheme of this
    /// search: generations only re-quantize layers whose genes changed.
    weight_cache: Arc<dnn::graph::WeightCache>,
    rng: ChaCha8Rng,
    evaluations: usize,
}

impl<'m> Lpq<'m> {
    /// Prepares a search: builds the calibration set, runs the FP model
    /// once to cache reference features, and fits per-layer scale-factor
    /// centers.
    pub fn new(model: &'m Model, cfg: LpqConfig) -> Self {
        let calib: Vec<Tensor> = dnn::data::calibration_set(model)
            .into_iter()
            .take(cfg.calib_size)
            .collect();
        Self::with_calibration(model, cfg, calib)
    }

    /// Like [`Lpq::new`] with explicit calibration inputs.
    pub fn with_calibration(model: &'m Model, cfg: LpqConfig, calib: Vec<Tensor>) -> Self {
        // Calibration forward passes are independent; fan them out on the
        // pooled work-stealing executor (candidate evaluation below rides
        // the same pool, so a whole search reuses one set of workers).
        let fp_traces: Vec<ForwardTrace> =
            par_map_pooled(&calib, |x| model.forward_traced(x, None, true));
        let evaluator = FitnessEvaluator::new(
            cfg.objective,
            cfg.tau,
            cfg.lambda,
            &fp_traces,
            model.layer_param_counts(),
        );
        // Concatenate up to 8 images' IRs per layer for activation fitting.
        let layers = model.num_quant_layers();
        let mut layer_acts = Vec::with_capacity(layers);
        for l in 0..layers {
            let mut buf = Vec::new();
            for t in fp_traces.iter().take(8) {
                buf.extend_from_slice(t.irs[l].data());
            }
            let len = buf.len();
            layer_acts.push(Tensor::from_vec(&[len], buf));
        }
        let sf_centers: Vec<f64> = model
            .layer_weights()
            .iter()
            .map(|w| LpParams::fit_sf(w))
            .collect();
        let weight_max_log: Vec<f64> = model
            .layer_weights()
            .iter()
            .map(|w| {
                w.iter()
                    .filter(|x| x.is_finite() && **x != 0.0)
                    .map(|x| f64::from(x.abs()).log2())
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let blocks = make_blocks(model, cfg.block_size);
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        Lpq {
            model,
            cfg,
            calib,
            evaluator,
            sf_centers,
            weight_max_log,
            blocks,
            layer_acts,
            weight_cache: Arc::default(),
            rng,
            evaluations: 0,
        }
    }

    /// Resolves a genome into concrete per-layer LP formats: the genome's
    /// scale factor is clamped so the layer's largest weight never
    /// saturates under the genome's `⟨n, es, rs⟩` (saturation-aware
    /// deployment of the searched parameters).
    pub fn resolve(&self, cand: &Candidate) -> Vec<LpParams> {
        cand.layers
            .iter()
            .zip(&self.weight_max_log)
            .map(|(l, &max_log)| {
                let base = l.to_lp();
                let sf = if max_log.is_finite() {
                    l.sf.min(base.max_scale() - max_log).clamp(-256.0, 256.0)
                } else {
                    l.sf
                };
                base.with_sf(sf)
            })
            .collect()
    }

    /// Builds the weight-only scheme for a resolved candidate, bound to
    /// the search-wide quantized-weight cache.
    fn resolved_scheme(&self, cand: &Candidate) -> QuantScheme {
        let resolved = self.resolve(cand);
        QuantScheme::new(
            resolved
                .into_iter()
                .map(|p| Some(Arc::new(p) as Arc<dyn lp::Quantizer + Send + Sync>))
                .collect(),
            vec![None; cand.len()],
        )
        .with_shared_cache(Arc::clone(&self.weight_cache))
    }

    /// The block partition in use.
    pub fn blocks(&self) -> &[Range<usize>] {
        &self.blocks
    }

    /// Number of `(layer, format)` weight tensors held by the search-wide
    /// quantized-weight cache (diagnostics).
    pub fn weight_cache_len(&self) -> usize {
        self.weight_cache.len()
    }

    /// Evaluates one candidate's fitness (lower is better).
    pub fn evaluate(&mut self, cand: &Candidate) -> f64 {
        self.evaluations += 1;
        let scheme = self.resolved_scheme(cand);
        let qm = self.model.quantize_weights(&scheme);
        let needs_irs = self.evaluator.needs_irs();
        let traces: Vec<ForwardTrace> =
            par_map_pooled(&self.calib, |x| qm.forward_traced(x, None, needs_irs));
        self.evaluator.fitness(&traces, cand)
    }

    /// Runs the full four-step search and derives activation parameters for
    /// the winner.
    pub fn run(mut self) -> LpqResult {
        let layers = self.model.num_quant_layers();
        // Step 1: candidate initialization. K − 1 random candidates plus an
        // all-8-bit anchor (a known-safe starting point).
        let mut population: Vec<(Candidate, f64)> = Vec::new();
        let anchor = Candidate {
            layers: self
                .sf_centers
                .iter()
                .map(|&c| LayerParams::clamped(8, 2, 3, c, self.cfg.hw_constrained))
                .collect(),
        };
        let anchor_fit = self.evaluate(&anchor);
        population.push((anchor, anchor_fit));
        for _ in 1..self.cfg.population {
            let c = Candidate::random(
                &mut self.rng,
                &self.sf_centers,
                self.cfg.sf_radius,
                self.cfg.hw_constrained,
            );
            let f = self.evaluate(&c);
            population.push((c, f));
        }
        let mut fitness_history = Vec::new();
        let mut best_history = Vec::new();
        // P passes over all blocks, C cycles each.
        let blocks = self.blocks.clone();
        for _pass in 0..self.cfg.passes {
            for block in &blocks {
                for _cycle in 0..self.cfg.cycles {
                    population.sort_by(|a, b| a.1.total_cmp(&b.1));
                    // Step 2: regeneration from the top two candidates.
                    let p1 = population[0].0.clone();
                    let p2 = population[1.min(population.len() - 1)].0.clone();
                    let child = Candidate::regenerate_block(
                        &p1,
                        &p2,
                        block.clone(),
                        &mut self.rng,
                        self.cfg.sf_radius,
                        self.cfg.hw_constrained,
                    );
                    // Step 3: diversity-promoting selection — cross the
                    // child with fresh random parents.
                    let mut diverse = Vec::new();
                    for _ in 0..self.cfg.diversity_children {
                        let rand_parent = Candidate::random(
                            &mut self.rng,
                            &self.sf_centers,
                            self.cfg.sf_radius,
                            self.cfg.hw_constrained,
                        );
                        diverse.push(Candidate::regenerate_block(
                            &child,
                            &rand_parent,
                            block.clone(),
                            &mut self.rng,
                            self.cfg.sf_radius,
                            self.cfg.hw_constrained,
                        ));
                    }
                    // Step 4: evaluation and population update.
                    let child_fit = self.evaluate(&child);
                    population.push((child, child_fit));
                    let mut best_div: Option<(Candidate, f64)> = None;
                    for d in diverse {
                        let f = self.evaluate(&d);
                        if best_div.as_ref().is_none_or(|(_, bf)| f < *bf) {
                            best_div = Some((d, f));
                        }
                    }
                    if let Some(bd) = best_div {
                        population.push(bd);
                    }
                    population.sort_by(|a, b| a.1.total_cmp(&b.1));
                    population.truncate(self.cfg.max_population);
                    fitness_history.push(population[0].1);
                    best_history.push(population[0].0.clone());
                }
            }
        }
        population.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = population
            .into_iter()
            .next()
            .map(|(c, _)| c)
            .expect("population is never empty");
        let weight_params = self.resolve(&best);
        let activation_params = derive_activation_params(&best, &self.layer_acts, SfRule::Fitted);
        let param_counts = self.model.layer_param_counts();
        let ir_sizes: Vec<usize> = self.layer_acts.iter().map(Tensor::len).collect();
        let avg_weight_bits = best.avg_bits(&param_counts);
        let avg_activation_bits =
            crate::activation::avg_activation_bits(&activation_params, Some(&ir_sizes));
        let model_size_mb = best.model_size_mb(&param_counts);
        assert_eq!(best.len(), layers);
        LpqResult {
            best,
            weight_params,
            activation_params,
            avg_weight_bits,
            avg_activation_bits,
            model_size_mb,
            fitness_history,
            best_history,
            evaluations: self.evaluations,
        }
    }
}

/// Splits the model's weighted layers into regeneration blocks: fixed-size
/// chunks when `block_size > 0`, else the model's own block boundaries
/// (falling back to chunks of 4 when the model has none).
fn make_blocks(model: &Model, block_size: usize) -> Vec<Range<usize>> {
    let layers = model.num_quant_layers();
    if block_size == 0 && !model.block_ends().is_empty() {
        let mut out = Vec::new();
        let mut start = 0usize;
        for &end in model.block_ends() {
            if end > start {
                out.push(start..end);
                start = end;
            }
        }
        if start < layers {
            out.push(start..layers);
        }
        return out;
    }
    let b = if block_size == 0 { 4 } else { block_size };
    (0..layers)
        .step_by(b)
        .map(|s| s..(s + b).min(layers))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn::models;

    fn tiny_config() -> LpqConfig {
        LpqConfig {
            population: 4,
            passes: 1,
            cycles: 1,
            block_size: 8,
            diversity_children: 2,
            calib_size: 8,
            max_population: 8,
            ..LpqConfig::paper()
        }
    }

    #[test]
    fn presets_are_sane() {
        let p = LpqConfig::paper();
        assert_eq!((p.population, p.passes, p.cycles), (20, 10, 4));
        assert_eq!(p.diversity_children, 5);
        assert!((p.lambda - 0.4).abs() < 1e-12);
        assert_eq!(p.calib_size, 128);
        let q = LpqConfig::quick();
        assert!(q.population < p.population);
    }

    #[test]
    fn block_partition_fixed_size() {
        let m = models::resnet18_like(); // 21 layers
        let blocks = make_blocks(&m, 4);
        assert_eq!(blocks.len(), 6);
        assert_eq!(blocks[0], 0..4);
        assert_eq!(blocks[5], 20..21);
    }

    #[test]
    fn block_partition_model_blocks() {
        let m = models::vit_b_like();
        let blocks = make_blocks(&m, 0);
        // 13 marked blocks + trailing head layer.
        assert_eq!(blocks.len(), 14);
        assert_eq!(blocks[0], 0..1); // patch embed
        assert_eq!(blocks[1], 1..7); // first encoder block
        let last = blocks.last().unwrap().clone();
        assert_eq!(last.end, m.num_quant_layers());
    }

    #[test]
    fn search_runs_and_improves_over_random() {
        let m = models::resnet18_like();
        let cfg = tiny_config();
        let lpq = Lpq::new(&m, cfg);
        let result = lpq.run();
        assert_eq!(result.best.len(), m.num_quant_layers());
        assert!(!result.fitness_history.is_empty());
        assert!(result.evaluations > 4);
        // Fitness history must be non-increasing (we always keep the best).
        for w in result.fitness_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
        assert!(result.avg_weight_bits >= 2.0 && result.avg_weight_bits <= 8.0);
        assert!(result.avg_activation_bits >= 4.0 && result.avg_activation_bits <= 8.0);
        assert!(result.model_size_mb > 0.0);
    }

    #[test]
    fn evaluate_populates_shared_weight_cache() {
        let m = models::resnet18_like();
        let mut lpq = Lpq::new(&m, tiny_config());
        let anchor = Candidate {
            layers: (0..m.num_quant_layers())
                .map(|_| LayerParams::clamped(8, 2, 3, 0.0, true))
                .collect(),
        };
        assert_eq!(lpq.weight_cache_len(), 0);
        let f1 = lpq.evaluate(&anchor);
        let filled = lpq.weight_cache_len();
        assert_eq!(filled, m.num_quant_layers(), "one entry per layer");
        // Re-evaluating the same genome hits the cache (no growth) and is
        // bit-identical.
        let f2 = lpq.evaluate(&anchor);
        assert_eq!(lpq.weight_cache_len(), filled);
        assert_eq!(f1.to_bits(), f2.to_bits());
    }

    #[test]
    fn search_is_deterministic() {
        let m = models::mobilenetv2_like();
        let r1 = Lpq::new(&m, tiny_config()).run();
        let r2 = Lpq::new(&m, tiny_config()).run();
        assert_eq!(r1.best, r2.best);
        assert_eq!(r1.fitness_history, r2.fitness_history);
    }

    #[test]
    fn hw_constrained_candidates_pack() {
        let m = models::mobilenetv2_like();
        let mut cfg = tiny_config();
        cfg.hw_constrained = true;
        let result = Lpq::new(&m, cfg).run();
        for l in &result.best.layers {
            assert!([2, 4, 8].contains(&l.n));
        }
        for a in &result.activation_params {
            assert!([4, 8].contains(&a.n), "activations are 4- or 8-bit");
        }
    }

    #[test]
    fn scheme_lengths_match() {
        let m = models::resnet18_like();
        let result = Lpq::new(&m, tiny_config()).run();
        let s = result.scheme();
        assert_eq!(s.weights.len(), m.num_quant_layers());
        assert_eq!(s.activations.len(), m.num_quant_layers());
        assert!(s.weights.iter().all(Option::is_some));
        assert!(s.activations.iter().all(Option::is_some));
        let ws = result.weight_scheme();
        assert!(ws.activations.iter().all(Option::is_none));
    }
}
