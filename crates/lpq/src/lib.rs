//! # LPQ — Logarithmic-Posit Quantization framework
//!
//! The genetic-algorithm post-training-quantization search of §4 of the
//! paper: a population of per-layer LP parameter vectors
//! `Δ[l] = ⟨n_l, es_l, rs_l, sf_l⟩` evolves through block-wise regeneration
//! (Eqs. 2–5), diversity-promoting selection, and evaluation under the
//! global-local contrastive fitness `L_F = L_CO · L_CR^λ` (Eq. 6), using a
//! small unlabeled calibration set.
//!
//! ## Modules
//!
//! * [`params`] — candidate encodings ([`LayerParams`], [`Candidate`])
//! * [`objective`] — kurtosis-3 pooling, the contrastive objective, and the
//!   alternative losses compared in Fig. 5(a)
//! * [`activation`] — the paper's weight→activation parameter derivation
//! * [`search`] — the four-step genetic algorithm
//!
//! ## Quick example
//!
//! ```no_run
//! use dnn::models;
//! use lpq::search::{Lpq, LpqConfig};
//!
//! let model = models::resnet18_like();
//! let cfg = LpqConfig::quick();
//! let result = Lpq::new(&model, cfg).run();
//! println!("avg weight bits: {:.2}", result.avg_weight_bits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod objective;
pub mod params;
pub mod search;

pub use params::{Candidate, LayerParams};
pub use search::{Lpq, LpqConfig, LpqResult};
