//! Candidate encodings: the per-layer LP parameter vector `Δ` of §4.
//!
//! A quantization solution is a vector of length `4N`; each group of four
//! values `⟨n_l, es_l, rs_l, sf_l⟩` parameterizes layer `l`'s LP format.
//! The search space follows the paper: `n ∈ [2, 8]`, `es ∈ [0, n−3]`,
//! `rs ∈ [2, n−1]`, and `sf` in a small ball around the layer's fitted
//! center. In hardware-constrained mode (`§5.1`), `n` is restricted to
//! powers of two `{2, 4, 8}` so LPA can pack weights into its three PE
//! modes.

use lp::format::LpParams;
use rand::Rng;

/// One layer's LP parameters inside a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerParams {
    /// Bit width `n ∈ [2, 8]`.
    pub n: u32,
    /// Exponent size `es ∈ [0, n−3]`.
    pub es: u32,
    /// Regime cap `rs ∈ [2, n−1]`.
    pub rs: u32,
    /// Scale factor.
    pub sf: f64,
}

impl LayerParams {
    /// Clamps raw values into the LPQ search space, optionally snapping `n`
    /// to powers of two for hardware packing.
    pub fn clamped(n: i64, es: i64, rs: i64, sf: f64, hw_constrained: bool) -> Self {
        let mut n = n.clamp(2, 8) as u32;
        if hw_constrained {
            n = match n {
                0..=2 => 2,
                3..=5 => 4,
                _ => 8,
            };
        }
        let lp = LpParams::clamped(i64::from(n), es, rs, sf);
        LayerParams {
            n: lp.n(),
            es: lp.es(),
            rs: lp.rs(),
            sf: lp.sf(),
        }
    }

    /// Converts to a concrete LP format.
    ///
    /// # Panics
    ///
    /// Panics if the fields are outside the valid LP space (cannot happen
    /// for values produced by [`LayerParams::clamped`]).
    pub fn to_lp(self) -> LpParams {
        LpParams::new(self.n, self.es, self.rs, self.sf)
            .expect("LayerParams must hold a valid LP format")
    }
}

/// A full quantization candidate: one [`LayerParams`] per weighted layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Per-layer parameters, in weighted-layer order.
    pub layers: Vec<LayerParams>,
}

impl Candidate {
    /// Samples a uniform-random candidate within the search space.
    ///
    /// `sf_centers` are per-layer fitted scale-factor centers (the paper
    /// centers the `sf` ball "around the mean weight distribution of that
    /// layer"); `sf_radius` is the ball radius.
    pub fn random<R: Rng + ?Sized>(
        rng: &mut R,
        sf_centers: &[f64],
        sf_radius: f64,
        hw_constrained: bool,
    ) -> Self {
        let layers = sf_centers
            .iter()
            .map(|&c| {
                let n = rng.gen_range(2..=8i64);
                let es = rng.gen_range(0..=6i64);
                let rs = rng.gen_range(2..=7i64);
                let sf = c + rng.gen_range(-sf_radius..=sf_radius);
                LayerParams::clamped(n, es, rs, sf, hw_constrained)
            })
            .collect();
        Candidate { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the candidate has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Parameter-weighted average weight bit-width (the paper's "MP4.2"
    /// style metric).
    ///
    /// # Panics
    ///
    /// Panics if `param_counts` length differs from the layer count.
    pub fn avg_bits(&self, param_counts: &[usize]) -> f64 {
        assert_eq!(
            param_counts.len(),
            self.layers.len(),
            "param_counts length mismatch"
        );
        let total: usize = param_counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .layers
            .iter()
            .zip(param_counts)
            .map(|(l, &c)| f64::from(l.n) * c as f64)
            .sum();
        weighted / total as f64
    }

    /// Model size in megabytes under this candidate (params × bits / 8).
    pub fn model_size_mb(&self, param_counts: &[usize]) -> f64 {
        assert_eq!(
            param_counts.len(),
            self.layers.len(),
            "param_counts length mismatch"
        );
        let bits: f64 = self
            .layers
            .iter()
            .zip(param_counts)
            .map(|(l, &c)| f64::from(l.n) * c as f64)
            .sum();
        bits / 8.0 / 1e6
    }

    /// The block-wise regeneration of Eqs. 2–5: the child copies the best
    /// parent outside `block`, and inside the block draws
    ///
    /// * `n ∈ [min(p1,p2)−1, max(p1,p2)+1]` (dynamic range params use
    ///   min/max),
    /// * `es` likewise,
    /// * `rs ∈ [0, ceil(mean(p1,p2))+1]` (shape params use the mean),
    /// * `sf = mean(p1,p2) + η(−r, r)`.
    pub fn regenerate_block<R: Rng + ?Sized>(
        best: &Candidate,
        other: &Candidate,
        block: std::ops::Range<usize>,
        rng: &mut R,
        sf_radius: f64,
        hw_constrained: bool,
    ) -> Candidate {
        assert_eq!(best.len(), other.len(), "parents must have equal length");
        let mut layers = best.layers.clone();
        for i in block {
            let (p1, p2) = (best.layers[i], other.layers[i]);
            let n_lo = i64::from(p1.n.min(p2.n)) - 1;
            let n_hi = i64::from(p1.n.max(p2.n)) + 1;
            let n = rng.gen_range(n_lo..=n_hi);
            let es_lo = i64::from(p1.es.min(p2.es)) - 1;
            let es_hi = i64::from(p1.es.max(p2.es)) + 1;
            let es = rng.gen_range(es_lo..=es_hi);
            let rs_hi = ((f64::from(p1.rs) + f64::from(p2.rs)) / 2.0).ceil() as i64 + 1;
            let rs = rng.gen_range(0..=rs_hi.max(0));
            let sf = (p1.sf + p2.sf) / 2.0 + rng.gen_range(-sf_radius..=sf_radius);
            layers[i] = LayerParams::clamped(n, es, rs, sf, hw_constrained);
        }
        Candidate { layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn clamped_respects_search_space() {
        for n in -3..12i64 {
            for es in -2..9i64 {
                for rs in -2..12i64 {
                    let p = LayerParams::clamped(n, es, rs, 100.0, false);
                    assert!((2..=8).contains(&p.n));
                    assert!(p.es <= p.n.saturating_sub(3));
                    assert!(p.rs >= 2u32.min(p.n - 1) && p.rs < p.n);
                    let _ = p.to_lp(); // must be a valid format
                }
            }
        }
    }

    #[test]
    fn hw_constrained_snaps_to_powers_of_two() {
        for n in 2..=8i64 {
            let p = LayerParams::clamped(n, 1, 3, 0.0, true);
            assert!([2, 4, 8].contains(&p.n), "n={n} → {}", p.n);
        }
        assert_eq!(LayerParams::clamped(3, 0, 2, 0.0, true).n, 4);
        assert_eq!(LayerParams::clamped(6, 0, 2, 0.0, true).n, 8);
    }

    #[test]
    fn random_candidates_stay_in_space() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let centers = vec![1.5; 10];
        for _ in 0..50 {
            let c = Candidate::random(&mut rng, &centers, 0.1, false);
            assert_eq!(c.len(), 10);
            for l in &c.layers {
                assert!((2..=8).contains(&l.n));
                assert!((l.sf - 1.5).abs() <= 0.1 + 1e-12);
            }
        }
    }

    #[test]
    fn avg_bits_weighted_by_params() {
        let c = Candidate {
            layers: vec![
                LayerParams::clamped(2, 0, 1, 0.0, false),
                LayerParams::clamped(8, 2, 3, 0.0, false),
            ],
        };
        // 3 params at 2 bits, 1 param at 8 bits → (6+8)/4 = 3.5.
        assert!((c.avg_bits(&[3, 1]) - 3.5).abs() < 1e-12);
        // Size: 14 bits = 1.75 bytes.
        assert!((c.model_size_mb(&[3, 1]) - 1.75e-6).abs() < 1e-18);
    }

    #[test]
    fn regeneration_only_touches_block() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let centers = vec![0.0; 12];
        let a = Candidate::random(&mut rng, &centers, 0.05, false);
        let b = Candidate::random(&mut rng, &centers, 0.05, false);
        let child = Candidate::regenerate_block(&a, &b, 4..8, &mut rng, 0.05, false);
        for i in 0..12 {
            if !(4..8).contains(&i) {
                assert_eq!(
                    child.layers[i], a.layers[i],
                    "layer {i} must copy best parent"
                );
            }
        }
    }

    #[test]
    fn regenerated_n_within_parent_envelope() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mk = |n: u32| Candidate {
            layers: vec![LayerParams::clamped(i64::from(n), 1, 3, 0.0, false)],
        };
        let a = mk(4);
        let b = mk(6);
        for _ in 0..100 {
            let child = Candidate::regenerate_block(&a, &b, 0..1, &mut rng, 0.01, false);
            let n = child.layers[0].n;
            assert!((3..=7).contains(&n), "n={n} outside [min−1, max+1]");
        }
    }

    #[test]
    fn empty_candidate() {
        let c = Candidate { layers: vec![] };
        assert!(c.is_empty());
        assert_eq!(c.avg_bits(&[]), 0.0);
    }
}
