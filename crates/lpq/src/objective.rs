//! The LPQ fitness function (§4.1): a global-local contrastive objective
//! over kurtosis-pooled intermediate representations, combined with a
//! compression-ratio term — plus the alternative losses (MSE,
//! KL-divergence, global-only contrastive) the paper compares against in
//! Fig. 5(a).

use crate::params::Candidate;
use dnn::graph::ForwardTrace;
use dnn::tensor::Tensor;

/// Excess kurtosis ("Kurtosis-3" after DeCarlo 1997): `m₄/σ⁴ − 3`.
///
/// The paper pools each intermediate representation with this statistic
/// instead of mean pooling because it better characterizes the
/// *tailedness* of DNN activations. Returns `0.0` for constant or empty
/// input.
///
/// # Examples
///
/// ```
/// use lpq::objective::kurtosis3;
///
/// // A two-point symmetric distribution has kurtosis 1 → excess −2.
/// let k = kurtosis3(&[1.0, -1.0, 1.0, -1.0]);
/// assert!((k + 2.0).abs() < 1e-9);
/// ```
pub fn kurtosis3(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().map(|&x| f64::from(x)).sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    for &x in xs {
        let d = f64::from(x) - mean;
        let d2 = d * d;
        m2 += d2;
        m4 += d2 * d2;
    }
    m2 /= n;
    m4 /= n;
    if m2 <= 1e-24 {
        return 0.0;
    }
    m4 / (m2 * m2) - 3.0
}

/// Row-wise kurtosis pooling of a trace's intermediate representations:
/// each layer's IR tensor becomes one scalar, yielding a vector with one
/// entry per weighted layer.
pub fn pool_irs(irs: &[Tensor]) -> Vec<f64> {
    irs.iter().map(|t| kurtosis3(t.data())).collect()
}

/// L2-normalizes a vector in place (no-op on zero vectors).
pub fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v {
            *x /= norm;
        }
    }
}

/// The loss functions compared in Fig. 5(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectiveKind {
    /// The paper's global-local contrastive objective over pooled
    /// intermediate representations (Eq. 6).
    GlobalLocalContrastive,
    /// Contrastive objective on the final output only (Evol-Q style).
    GlobalContrastive,
    /// Mean squared error of the final logits.
    Mse,
    /// KL divergence between softmaxed FP and quantized logits.
    KlDivergence,
}

impl ObjectiveKind {
    /// All kinds, in the order Fig. 5(a) plots them.
    pub const ALL: [ObjectiveKind; 4] = [
        ObjectiveKind::GlobalLocalContrastive,
        ObjectiveKind::GlobalContrastive,
        ObjectiveKind::Mse,
        ObjectiveKind::KlDivergence,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ObjectiveKind::GlobalLocalContrastive => "global-local contrastive",
            ObjectiveKind::GlobalContrastive => "global contrastive",
            ObjectiveKind::Mse => "MSE",
            ObjectiveKind::KlDivergence => "KL-divergence",
        }
    }

    /// Whether this objective needs intermediate representations captured.
    pub fn needs_irs(&self) -> bool {
        matches!(self, ObjectiveKind::GlobalLocalContrastive)
    }
}

/// Precomputed full-precision reference features plus the fitness
/// computation `L_F = L_CO · (L_CR / L_CR,max)^λ`.
///
/// Pooled features are *batch-centered* before normalization: the kurtosis
/// profile of a DNN is dominated by per-layer structure shared across
/// images, so without centering every positive *and* negative pair has
/// cosine similarity ≈ 1 and the contrastive objective loses its dynamic
/// range. Subtracting the calibration-batch mean feature (a standard step
/// in contrastive representation comparison) leaves the image-specific
/// component the objective is meant to compare.
#[derive(Debug, Clone)]
pub struct FitnessEvaluator {
    kind: ObjectiveKind,
    tau: f64,
    lambda: f64,
    /// Centered, unit-normalized pooled IR vector per calibration image.
    fp_pooled: Vec<Vec<f64>>,
    /// Per-layer mean of FP pooled features over the batch (centering
    /// reference for quantized features too).
    pooled_mean: Vec<f64>,
    /// Centered, unit-normalized logits per calibration image.
    fp_logits: Vec<Vec<f64>>,
    /// Batch-mean logit vector.
    logit_mean: Vec<f64>,
    /// Raw logits per image (for MSE / KL).
    fp_raw_logits: Vec<Vec<f32>>,
    param_counts: Vec<usize>,
    total_param_bits_max: f64,
}

/// Mean vector over a batch of equal-length vectors.
fn batch_mean(vs: &[Vec<f64>]) -> Vec<f64> {
    if vs.is_empty() {
        return Vec::new();
    }
    let mut mean = vec![0.0; vs[0].len()];
    for v in vs {
        for (m, x) in mean.iter_mut().zip(v) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= vs.len() as f64;
    }
    mean
}

fn center_and_normalize(v: &mut [f64], mean: &[f64]) {
    for (x, m) in v.iter_mut().zip(mean) {
        *x -= m;
    }
    normalize(v);
}

impl FitnessEvaluator {
    /// Builds an evaluator from the FP model's calibration traces.
    pub fn new(
        kind: ObjectiveKind,
        tau: f64,
        lambda: f64,
        fp_traces: &[ForwardTrace],
        param_counts: Vec<usize>,
    ) -> Self {
        let raw_pooled: Vec<Vec<f64>> = fp_traces.iter().map(|t| pool_irs(&t.irs)).collect();
        let pooled_mean = batch_mean(&raw_pooled);
        let fp_pooled = raw_pooled
            .into_iter()
            .map(|mut v| {
                center_and_normalize(&mut v, &pooled_mean);
                v
            })
            .collect();
        let raw_logits: Vec<Vec<f64>> = fp_traces
            .iter()
            .map(|t| t.output.data().iter().map(|&x| f64::from(x)).collect())
            .collect();
        let logit_mean = batch_mean(&raw_logits);
        let fp_logits = raw_logits
            .into_iter()
            .map(|mut v| {
                center_and_normalize(&mut v, &logit_mean);
                v
            })
            .collect();
        let fp_raw_logits = fp_traces.iter().map(|t| t.output.data().to_vec()).collect();
        let total: usize = param_counts.iter().sum();
        FitnessEvaluator {
            kind,
            tau,
            lambda,
            fp_pooled,
            pooled_mean,
            fp_logits,
            logit_mean,
            fp_raw_logits,
            param_counts,
            total_param_bits_max: (total * 8) as f64,
        }
    }

    /// The objective kind.
    pub fn kind(&self) -> ObjectiveKind {
        self.kind
    }

    /// Whether quantized traces must capture IRs for this evaluator.
    pub fn needs_irs(&self) -> bool {
        self.kind.needs_irs()
    }

    /// The compression term `L_CR / L_CR,max ∈ (0, 1]`: parameter-weighted
    /// bits relative to an all-8-bit model.
    pub fn compression_term(&self, candidate: &Candidate) -> f64 {
        let bits: f64 = candidate
            .layers
            .iter()
            .zip(&self.param_counts)
            .map(|(l, &c)| f64::from(l.n) * c as f64)
            .sum();
        (bits / self.total_param_bits_max).max(1e-9)
    }

    /// The representational-divergence term of the configured objective
    /// (lower is better).
    ///
    /// # Panics
    ///
    /// Panics if the number of traces differs from the calibration size.
    pub fn divergence(&self, q_traces: &[ForwardTrace]) -> f64 {
        assert_eq!(
            q_traces.len(),
            self.fp_pooled.len(),
            "trace count must match calibration size"
        );
        match self.kind {
            ObjectiveKind::GlobalLocalContrastive => {
                let q_pooled: Vec<Vec<f64>> = q_traces
                    .iter()
                    .map(|t| {
                        let mut v = pool_irs(&t.irs);
                        center_and_normalize(&mut v, &self.pooled_mean);
                        v
                    })
                    .collect();
                // Global part on logits plus local part on pooled IRs.
                let q_logits: Vec<Vec<f64>> = q_traces
                    .iter()
                    .map(|t| {
                        let mut v: Vec<f64> =
                            t.output.data().iter().map(|&x| f64::from(x)).collect();
                        center_and_normalize(&mut v, &self.logit_mean);
                        v
                    })
                    .collect();
                contrastive(&q_pooled, &self.fp_pooled, self.tau)
                    + contrastive(&q_logits, &self.fp_logits, self.tau)
            }
            ObjectiveKind::GlobalContrastive => {
                let q_logits: Vec<Vec<f64>> = q_traces
                    .iter()
                    .map(|t| {
                        let mut v: Vec<f64> =
                            t.output.data().iter().map(|&x| f64::from(x)).collect();
                        center_and_normalize(&mut v, &self.logit_mean);
                        v
                    })
                    .collect();
                contrastive(&q_logits, &self.fp_logits, self.tau)
            }
            ObjectiveKind::Mse => {
                let mut acc = 0.0;
                let mut count = 0usize;
                for (t, fp) in q_traces.iter().zip(&self.fp_raw_logits) {
                    for (&a, &b) in t.output.data().iter().zip(fp) {
                        let d = f64::from(a) - f64::from(b);
                        acc += d * d;
                        count += 1;
                    }
                }
                acc / count.max(1) as f64
            }
            ObjectiveKind::KlDivergence => {
                let mut acc = 0.0;
                for (t, fp) in q_traces.iter().zip(&self.fp_raw_logits) {
                    acc += kl_div(fp, t.output.data());
                }
                acc / q_traces.len().max(1) as f64
            }
        }
    }

    /// The complete fitness `L_F = L_CO · (L_CR/L_CR,max)^λ` (lower is
    /// better).
    ///
    /// The divergence term is shifted to be strictly positive so the
    /// multiplicative combination preserves ordering.
    pub fn fitness(&self, q_traces: &[ForwardTrace], candidate: &Candidate) -> f64 {
        let div = self.divergence(q_traces).max(1e-12);
        div * self.compression_term(candidate).powf(self.lambda)
    }
}

/// The contrastive loss of Eq. 6: for each sample `p`, the positive is the
/// FP feature of the same image and the negatives are the FP features of
/// every other calibration image.
fn contrastive(q: &[Vec<f64>], fp: &[Vec<f64>], tau: f64) -> f64 {
    let n = q.len();
    let mut total = 0.0;
    for p in 0..n {
        let pos = dot(&q[p], &fp[p]) / tau;
        let mut neg_sum = 0.0;
        for (j, fp_j) in fp.iter().enumerate() {
            if j != p {
                neg_sum += (dot(&q[p], fp_j) / tau - pos).exp();
            }
        }
        // log(1 + e^{−pos}·Σ e^{neg}) computed in a shifted form for
        // stability: e^{neg−pos} summed directly.
        total += (1.0 + neg_sum).ln();
    }
    total / n.max(1) as f64
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// KL(softmax(fp) ‖ softmax(q)).
fn kl_div(fp: &[f32], q: &[f32]) -> f64 {
    let p = softmax64(fp);
    let r = softmax64(q);
    p.iter()
        .zip(&r)
        .map(|(&pi, &ri)| {
            if pi > 1e-12 {
                pi * (pi / ri.max(1e-12)).ln()
            } else {
                0.0
            }
        })
        .sum()
}

fn softmax64(xs: &[f32]) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f64> = xs.iter().map(|&x| f64::from(x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::LayerParams;
    use dnn::tensor::Tensor;

    fn trace(logits: Vec<f32>, irs: Vec<Vec<f32>>) -> ForwardTrace {
        ForwardTrace {
            output: Tensor::from_vec(&[logits.len()], logits),
            irs: irs
                .into_iter()
                .map(|v| Tensor::from_vec(&[v.len()], v))
                .collect(),
        }
    }

    fn candidate(ns: &[u32]) -> Candidate {
        Candidate {
            layers: ns
                .iter()
                .map(|&n| LayerParams::clamped(i64::from(n), 1, 3, 0.0, false))
                .collect(),
        }
    }

    #[test]
    fn kurtosis_of_gaussianish_is_small() {
        // 12-uniform sums ≈ Gaussian → excess kurtosis ≈ 0.
        let xs: Vec<f32> = (0..4000)
            .map(|i| {
                let mut s = 0.0f64;
                for k in 0..12 {
                    s += (((i * 12 + k) as f64 * 0.61803).fract()) - 0.5;
                }
                s as f32
            })
            .collect();
        let k = kurtosis3(&xs);
        // A light-tailed near-Gaussian sits near 0 — far below the
        // heavy-tailed values the pooling is meant to flag.
        assert!(k.abs() < 1.0, "k={k}");
        assert_eq!(kurtosis3(&[]), 0.0);
        assert_eq!(kurtosis3(&[3.0; 10]), 0.0);
    }

    #[test]
    fn kurtosis_detects_heavy_tails() {
        let mut xs = vec![0.1f32; 1000];
        xs.extend([10.0f32; 5]); // rare outliers → leptokurtic
        assert!(kurtosis3(&xs) > 10.0);
    }

    #[test]
    fn normalize_makes_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn identical_traces_minimize_contrastive() {
        // Distinct per-image features; matching q/fp should score lower
        // than mismatched.
        let fp = vec![
            trace(vec![1.0, 0.0, 0.0], vec![vec![1.0, 5.0, -2.0, 0.1]]),
            trace(vec![0.0, 1.0, 0.0], vec![vec![-3.0, 0.2, 0.2, 0.2]]),
            trace(vec![0.0, 0.0, 1.0], vec![vec![0.5, 0.5, 8.0, -8.0]]),
        ];
        let eval = FitnessEvaluator::new(
            ObjectiveKind::GlobalLocalContrastive,
            0.1,
            0.4,
            &fp,
            vec![10],
        );
        let matched = eval.divergence(&fp);
        // Shuffled: q features point at the wrong positives.
        let shuffled = vec![fp[1].clone(), fp[2].clone(), fp[0].clone()];
        let mismatched = eval.divergence(&shuffled);
        assert!(matched < mismatched, "{matched} vs {mismatched}");
    }

    #[test]
    fn mse_and_kl_zero_on_identical() {
        let fp = vec![
            trace(vec![1.0, 2.0], vec![]),
            trace(vec![-1.0, 0.5], vec![]),
        ];
        for kind in [ObjectiveKind::Mse, ObjectiveKind::KlDivergence] {
            let eval = FitnessEvaluator::new(kind, 0.1, 0.4, &fp, vec![1]);
            assert!(eval.divergence(&fp).abs() < 1e-12, "{kind:?}");
            assert!(!eval.needs_irs());
        }
    }

    #[test]
    fn mse_grows_with_perturbation() {
        let fp = vec![trace(vec![1.0, 2.0, 3.0], vec![])];
        let eval = FitnessEvaluator::new(ObjectiveKind::Mse, 0.1, 0.4, &fp, vec![1]);
        let small = vec![trace(vec![1.1, 2.0, 3.0], vec![])];
        let large = vec![trace(vec![2.0, 0.0, 5.0], vec![])];
        assert!(eval.divergence(&small) < eval.divergence(&large));
    }

    #[test]
    fn compression_term_prefers_fewer_bits() {
        let fp = vec![trace(vec![1.0], vec![])];
        let eval = FitnessEvaluator::new(ObjectiveKind::Mse, 0.1, 0.4, &fp, vec![100, 100]);
        let low = eval.compression_term(&candidate(&[2, 2]));
        let high = eval.compression_term(&candidate(&[8, 8]));
        assert!(low < high);
        assert!((high - 1.0).abs() < 1e-12); // all-8-bit = max
        assert!((low - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fitness_balances_divergence_and_compression() {
        let fp = vec![trace(vec![1.0, -1.0], vec![])];
        let eval = FitnessEvaluator::new(ObjectiveKind::Mse, 0.1, 0.4, &fp, vec![100]);
        // Same divergence, fewer bits → better fitness.
        let q = vec![trace(vec![1.05, -1.0], vec![])];
        let f_small = eval.fitness(&q, &candidate(&[2]));
        let f_large = eval.fitness(&q, &candidate(&[8]));
        assert!(f_small < f_large);
    }

    #[test]
    fn objective_kind_metadata() {
        assert_eq!(ObjectiveKind::ALL.len(), 4);
        assert!(ObjectiveKind::GlobalLocalContrastive.needs_irs());
        assert!(!ObjectiveKind::GlobalContrastive.needs_irs());
        assert_eq!(ObjectiveKind::Mse.name(), "MSE");
    }
}
