//! Activation quantization (§4, "Quantization for Activation").
//!
//! After the weight search converges, each layer's input/output activations
//! get LP parameters *derived* from the weight parameters rather than
//! searched:
//!
//! * `n_act = min(8, 2·n_w)`
//! * `es_act = min(5, 2·es_w)`
//! * `rs_act = rs_w` (retaining the regime "achieves best performance")
//! * scale factor: the paper accumulates `sf_act^l = sf_act^{l−1} + sf_w^l`,
//!   which assumes trained, normalized networks whose activations stay near
//!   unit scale. With synthetic weights the activation scales drift, so the
//!   default here *fits* the activation scale factor on the calibration
//!   IRs (the behavior-preserving translation; see `DESIGN.md`). The
//!   paper's accumulation rule is available as
//!   [`SfRule::Accumulate`].

use crate::params::{Candidate, LayerParams};
use dnn::tensor::Tensor;

/// How activation scale factors are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SfRule {
    /// Fit `sf` per layer from calibration activations (default).
    #[default]
    Fitted,
    /// The paper's accumulation rule `sf_act^l = sf_act^{l−1} + sf_w^l`,
    /// clamped to the valid LP range.
    Accumulate,
}

/// Derives per-layer activation LP parameters from the weight candidate.
///
/// `calib_irs` must hold one representative activation tensor per weighted
/// layer (e.g. the FP model's IRs on a calibration image batch,
/// concatenated or single-image) and is required for [`SfRule::Fitted`].
///
/// # Panics
///
/// Panics if `calib_irs` is shorter than the candidate under
/// [`SfRule::Fitted`].
pub fn derive_activation_params(
    candidate: &Candidate,
    calib_irs: &[Tensor],
    rule: SfRule,
) -> Vec<LayerParams> {
    let mut out = Vec::with_capacity(candidate.len());
    let mut sf_acc = 0.0f64;
    for (l, w) in candidate.layers.iter().enumerate() {
        let n = (w.n * 2).min(8);
        // The paper's es_act = min(5, 2·es_w), additionally capped so the
        // taper center keeps at least 2 fraction bits (resolution-
        // preserving deployment: a huge es at n = 8 would leave the format
        // with factor-√2 granularity and destroy the forward pass; the
        // fitted scale factor already supplies the dynamic-range
        // adaptation the larger es was meant to buy).
        let rs = w.rs.min(n - 1).max(2u32.min(n - 1));
        let es_resolution_cap = n.saturating_sub(1 + rs + 2);
        let es = (w.es * 2).min(5).min(es_resolution_cap);
        let shape = LayerParams::clamped(i64::from(n), i64::from(es), i64::from(rs), 0.0, false);
        let sf = match rule {
            SfRule::Fitted => {
                assert!(
                    l < calib_irs.len(),
                    "calibration IRs must cover every layer"
                );
                // Saturation-aware fit: activations are outlier-heavy, and
                // clipping the top of the range destroys the forward pass.
                shape.to_lp().fit_sf_saturating(calib_irs[l].data())
            }
            SfRule::Accumulate => {
                sf_acc += w.sf;
                sf_acc.clamp(-256.0, 256.0)
            }
        };
        out.push(LayerParams::clamped(
            i64::from(shape.n),
            i64::from(shape.es),
            i64::from(shape.rs),
            sf,
            false,
        ));
    }
    out
}

/// Parameter-weighted average activation bit-width for reporting (uses the
/// layer *output* element counts as weights when provided, else uniform).
pub fn avg_activation_bits(act_params: &[LayerParams], ir_sizes: Option<&[usize]>) -> f64 {
    if act_params.is_empty() {
        return 0.0;
    }
    match ir_sizes {
        Some(sizes) => {
            let total: usize = sizes.iter().sum();
            if total == 0 {
                return 0.0;
            }
            act_params
                .iter()
                .zip(sizes)
                .map(|(p, &s)| f64::from(p.n) * s as f64)
                .sum::<f64>()
                / total as f64
        }
        None => act_params.iter().map(|p| f64::from(p.n)).sum::<f64>() / act_params.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(ns: &[(u32, u32, u32, f64)]) -> Candidate {
        Candidate {
            layers: ns
                .iter()
                .map(|&(n, es, rs, sf)| {
                    LayerParams::clamped(i64::from(n), i64::from(es), i64::from(rs), sf, false)
                })
                .collect(),
        }
    }

    fn irs(scales: &[f32]) -> Vec<Tensor> {
        scales
            .iter()
            .map(|&s| Tensor::from_vec(&[4], vec![s, -s, s * 0.5, -s * 0.5]))
            .collect()
    }

    #[test]
    fn widths_follow_paper_rule() {
        let c = candidate(&[(2, 0, 2, 0.0), (4, 1, 3, 0.0), (8, 2, 3, 0.0)]);
        let acts = derive_activation_params(&c, &irs(&[1.0, 1.0, 1.0]), SfRule::Fitted);
        assert_eq!(acts[0].n, 4); // 2·2
        assert_eq!(acts[1].n, 8); // 2·4
        assert_eq!(acts[2].n, 8); // min(8, 16)
        assert_eq!(acts[0].es, 0);
        assert_eq!(acts[1].es, 2);
        // 2·es_w = 4 but the resolution cap (n−1−rs−2 = 2) wins.
        assert_eq!(acts[2].es, 2);
        // Regime retained.
        assert_eq!(acts[1].rs, 3);
    }

    #[test]
    fn es_respects_resolution_cap() {
        let c = candidate(&[(8, 5, 3, 0.0)]);
        let acts = derive_activation_params(&c, &irs(&[1.0]), SfRule::Fitted);
        // min(5, 10) = 5, but n−1−rs−2 = 2 preserves fraction resolution.
        assert_eq!(acts[0].es, 2);
        // With a small regime cap the es budget grows.
        let c = candidate(&[(8, 2, 2, 0.0)]);
        let acts = derive_activation_params(&c, &irs(&[1.0]), SfRule::Fitted);
        assert_eq!(acts[0].es, 3); // min(4, 5, 8−1−2−2 = 3)
    }

    #[test]
    fn fitted_sf_tracks_activation_scale() {
        let c = candidate(&[(4, 1, 3, 0.0), (4, 1, 3, 0.0)]);
        let acts = derive_activation_params(&c, &irs(&[0.125, 16.0]), SfRule::Fitted);
        // Small activations → positive sf (scales values up into the taper);
        // large activations → negative sf.
        assert!(acts[0].sf > 0.0, "sf={}", acts[0].sf);
        assert!(acts[1].sf < 0.0, "sf={}", acts[1].sf);
    }

    #[test]
    fn accumulate_rule_sums_weight_sfs() {
        let c = candidate(&[(4, 1, 3, 1.0), (4, 1, 3, 0.5), (4, 1, 3, -0.25)]);
        let acts = derive_activation_params(&c, &[], SfRule::Accumulate);
        assert!((acts[0].sf - 1.0).abs() < 1e-12);
        assert!((acts[1].sf - 1.5).abs() < 1e-12);
        assert!((acts[2].sf - 1.25).abs() < 1e-12);
    }

    #[test]
    fn avg_bits_weighted_and_uniform() {
        let c = candidate(&[(2, 0, 2, 0.0), (8, 2, 3, 0.0)]);
        let acts = derive_activation_params(&c, &irs(&[1.0, 1.0]), SfRule::Fitted);
        // n_act = [4, 8].
        assert!((avg_activation_bits(&acts, None) - 6.0).abs() < 1e-12);
        assert!((avg_activation_bits(&acts, Some(&[30, 10])) - 5.0).abs() < 1e-12);
        assert_eq!(avg_activation_bits(&[], None), 0.0);
    }

    #[test]
    fn derived_params_are_valid_lp() {
        let c = candidate(&[(3, 0, 2, 0.3), (5, 2, 4, -0.7), (7, 3, 6, 0.9)]);
        for p in derive_activation_params(&c, &irs(&[1.0, 2.0, 3.0]), SfRule::Fitted) {
            let _ = p.to_lp(); // must not panic
        }
    }
}
