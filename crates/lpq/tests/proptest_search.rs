//! Property-based tests on the LPQ search-space invariants.

use lpq::objective::{kurtosis3, normalize};
use lpq::params::{Candidate, LayerParams};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #[test]
    fn clamped_params_always_form_valid_lp(
        n in -10i64..20,
        es in -5i64..10,
        rs in -5i64..20,
        sf in -300.0f64..300.0,
        hw in prop::bool::ANY,
    ) {
        let p = LayerParams::clamped(n, es, rs, sf, hw);
        let lp = p.to_lp(); // must not panic
        prop_assert!((2..=8).contains(&p.n));
        if hw {
            prop_assert!([2, 4, 8].contains(&p.n));
        }
        prop_assert_eq!(lp.n(), p.n);
    }

    #[test]
    fn regeneration_stays_in_search_space(
        seed in 0u64..500,
        layers in 1usize..30,
        b_lo in 0usize..10,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers = vec![0.5; layers];
        let a = Candidate::random(&mut rng, &centers, 0.2, false);
        let b = Candidate::random(&mut rng, &centers, 0.2, false);
        let lo = b_lo.min(layers.saturating_sub(1));
        let hi = (lo + 4).min(layers);
        let child = Candidate::regenerate_block(&a, &b, lo..hi, &mut rng, 0.2, false);
        prop_assert_eq!(child.len(), layers);
        for (i, l) in child.layers.iter().enumerate() {
            let _ = l.to_lp();
            if !(lo..hi).contains(&i) {
                prop_assert_eq!(*l, a.layers[i], "outside block copies best parent");
            } else {
                // n within [min−1, max+1] of the parents.
                let pn = (a.layers[i].n, b.layers[i].n);
                let lo_n = pn.0.min(pn.1).saturating_sub(1).max(2);
                let hi_n = (pn.0.max(pn.1) + 1).min(8);
                prop_assert!((lo_n..=hi_n).contains(&l.n));
            }
        }
    }

    #[test]
    fn avg_bits_between_min_and_max_layer(
        seed in 0u64..200,
        layers in 1usize..20,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers = vec![0.0; layers];
        let c = Candidate::random(&mut rng, &centers, 0.1, true);
        let counts: Vec<usize> = (1..=layers).collect();
        let avg = c.avg_bits(&counts);
        let min = c.layers.iter().map(|l| l.n).min().unwrap() as f64;
        let max = c.layers.iter().map(|l| l.n).max().unwrap() as f64;
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
    }

    #[test]
    fn kurtosis_is_shift_and_scale_invariant(
        data in prop::collection::vec(-10.0f32..10.0, 16..256),
        shift in -5.0f32..5.0,
        scale in 0.5f32..4.0,
    ) {
        let k0 = kurtosis3(&data);
        let transformed: Vec<f32> = data.iter().map(|&x| x * scale + shift).collect();
        let k1 = kurtosis3(&transformed);
        // Kurtosis is invariant to affine transforms (within f32 noise).
        prop_assert!((k0 - k1).abs() < 0.3 + 0.01 * k0.abs(), "{k0} vs {k1}");
    }

    #[test]
    fn normalize_produces_unit_or_zero(v in prop::collection::vec(-100.0f64..100.0, 1..64)) {
        let mut v = v;
        normalize(&mut v);
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm < 1e-9 || (norm - 1.0).abs() < 1e-9);
    }
}
