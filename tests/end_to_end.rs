//! Cross-crate integration: the full co-design pipeline from format to
//! search to deployment accuracy.

use dnn::{data, models};
use lpq::search::{Lpq, LpqConfig};

fn tiny() -> LpqConfig {
    LpqConfig {
        population: 5,
        passes: 1,
        cycles: 1,
        block_size: 8,
        diversity_children: 2,
        calib_size: 12,
        max_population: 10,
        ..LpqConfig::paper()
    }
}

#[test]
fn lpq_pipeline_preserves_accuracy_on_cnn() {
    let model = models::resnet18_like();
    let result = Lpq::new(&model, tiny()).run();
    let test: Vec<_> = data::test_set(&model).into_iter().take(64).collect();
    let teacher = data::predictions(&model, &test);
    let acc = data::quantized_accuracy(&model, &result.scheme(), &test, &teacher);
    // Even a tiny-budget search must stay within a few points of baseline
    // on the robust CNN (the anchor candidate guarantees a safe fallback).
    assert!(
        acc > model.baseline_top1() - 8.0,
        "acc {acc} vs baseline {}",
        model.baseline_top1()
    );
    // And it must actually compress relative to FP32.
    assert!(result.avg_weight_bits <= 8.0);
    assert!(result.model_size_mb < model.num_params() as f64 * 4.0 / 1e6);
}

#[test]
fn lpq_scheme_runs_on_transformer() {
    let model = models::deit_s_like();
    let mut cfg = tiny();
    cfg.block_size = 0; // attention blocks
    let result = Lpq::new(&model, cfg).run();
    assert_eq!(result.best.len(), model.num_quant_layers());
    // The deployment scheme must produce finite logits.
    let qm = model.quantize_weights(&result.scheme());
    let input = data::calibration_set(&model).remove(0);
    let out = qm
        .forward_traced(&input, Some(&result.scheme()), false)
        .output;
    assert!(out.data().iter().all(|v| v.is_finite()));
}

#[test]
fn uniform_bit_sweep_is_monotone_in_fidelity() {
    // More weight bits must never *hurt* representational fidelity: check
    // the mean relative logit error against FP shrinks with width.
    use dnn::graph::QuantScheme;
    use lp::quantizer::{fit_quantizer, FormatKind};
    use std::sync::Arc;
    let model = models::resnet18_like();
    let inputs: Vec<_> = data::calibration_set(&model).into_iter().take(8).collect();
    let fp: Vec<_> = inputs.iter().map(|x| model.forward(x)).collect();
    let weights = model.layer_weights();
    let mut errs = Vec::new();
    for bits in [2u32, 4, 8] {
        let mut scheme = QuantScheme::identity(model.num_quant_layers());
        for (i, w) in scheme.weights.iter_mut().enumerate() {
            let q = fit_quantizer(FormatKind::Lp, bits, weights[i]).unwrap();
            *w = Some(Arc::from(q));
        }
        let qm = model.quantize_weights(&scheme);
        let mut err = 0.0f64;
        let mut norm = 0.0f64;
        for (x, f) in inputs.iter().zip(&fp) {
            let q = qm.forward(x);
            for (a, b) in q.data().iter().zip(f.data()) {
                err += f64::from(a - b).powi(2);
                norm += f64::from(*b).powi(2);
            }
        }
        errs.push((err / norm).sqrt());
    }
    assert!(
        errs[0] > errs[1],
        "2-bit must be worse than 4-bit: {errs:?}"
    );
    assert!(
        errs[1] > errs[2],
        "4-bit must be worse than 8-bit: {errs:?}"
    );
    assert!(errs[2] < 0.1, "8-bit LP must be near-lossless: {errs:?}");
}
