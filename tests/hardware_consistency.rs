//! Cross-crate integration: the LPA hardware model against the software
//! golden model — bit-level decode agreement, functional GEMM fidelity,
//! and cycle/energy bookkeeping against real model workloads.

use dnn::models;
use lp::format::{LpParams, LpWord};
use lpa::decode::{decode_lane, decode_packed};
use lpa::pe::PeMode;
use lpa::sim::{execute, extract_workload, reference_workload};
use lpa::systolic::{gemm_functional, ArrayConfig};
use lpa::Design;

#[test]
fn hardware_decoder_matches_software_codec_for_all_packable_formats() {
    // Every ⟨n, es, rs⟩ the LPQ hardware-constrained search can emit.
    for (n, es_max) in [(2u32, 0u32), (4, 1), (8, 5)] {
        for es in 0..=es_max {
            for rs in 2u32.min(n - 1)..=(n - 1) {
                let p = LpParams::new(n, es, rs, 0.25).unwrap();
                for w in 0..(1u16 << n) {
                    let hw = decode_lane(w as u8, &p);
                    let sw = p.decode(LpWord::from_bits(w));
                    if sw == 0.0 || sw.is_nan() {
                        assert!(hw.zero);
                        continue;
                    }
                    let rel = ((hw.value() - sw) / sw).abs();
                    // sf quantization to Q·8 bounds the decoder deviation.
                    assert!(rel < 0.01, "LP<{n},{es},{rs}> word {w:#b}: {rel}");
                }
            }
        }
    }
}

#[test]
fn packed_modes_agree_with_lane_decode() {
    let p2 = LpParams::new(2, 0, 1, 0.0).unwrap();
    let p4 = LpParams::new(4, 1, 3, 0.0).unwrap();
    for word in 0..=255u8 {
        for (mode, p) in [(PeMode::A, &p2), (PeMode::B, &p4)] {
            let lanes = decode_packed(word, mode, p);
            assert_eq!(lanes.len(), mode.lanes());
        }
    }
}

#[test]
fn functional_gemm_reproduces_dnn_linear_layer() {
    // A real linear layer computed by the tensor library and by the PE
    // array must agree within the log-linear converter's error.
    let model = models::deit_s_like();
    let node = model
        .nodes()
        .iter()
        .find(|n| matches!(n.op, dnn::graph::Op::Linear { .. }))
        .expect("has a linear layer");
    let (w, out_f, in_f) = match &node.op {
        dnn::graph::Op::Linear { weight, .. } => {
            let dense = weight.to_dense();
            (dense.data().to_vec(), weight.shape()[0], weight.shape()[1])
        }
        _ => unreachable!(),
    };
    // x[1, in] × wᵀ[in, out] with the weight transposed into [K, N] layout.
    let x: Vec<f64> = (0..in_f).map(|i| ((i as f64) * 0.13).sin()).collect();
    let mut wt = vec![0.0f64; in_f * out_f];
    for o in 0..out_f {
        for i in 0..in_f {
            wt[i * out_f + o] = f64::from(w[o * in_f + i]);
        }
    }
    let got = gemm_functional(&x, &wt, 1, in_f, out_f, PeMode::C);
    for o in 0..out_f {
        let exact: f64 = (0..in_f).map(|i| x[i] * f64::from(w[o * in_f + i])).sum();
        let tol = 0.01
            * (0..in_f)
                .map(|i| (x[i] * f64::from(w[o * in_f + i])).abs())
                .sum::<f64>()
            + 1e-9;
        assert!(
            (got[o] - exact).abs() <= tol,
            "output {o}: {} vs {exact}",
            got[o]
        );
    }
}

#[test]
fn workload_mac_counts_match_layer_shapes() {
    let model = models::resnet18_like();
    let bits = vec![8u32; model.num_quant_layers()];
    let workload = extract_workload(&model, &bits);
    // Stem conv: 256 positions × 27 reduction × 8 outputs.
    assert_eq!(workload[0].macs(), 256 * 27 * 8);
    // Reference scale multiplies MACs by 49 (spatial) × 64 (channels²) for
    // convs.
    let reference = reference_workload(&model, &bits);
    assert_eq!(reference[0].macs(), workload[0].macs() * 49 * 64);
}

#[test]
fn design_comparison_is_stable_across_models() {
    // On every zoo model, the Table-3 design ordering must hold for a
    // mixed allocation: LPA fastest, AdaptivFloat least dense.
    let cfg = ArrayConfig::default();
    for name in ["resnet18", "resnet50", "mobilenetv2", "vit_b"] {
        let model = models::by_name(name);
        let bits: Vec<u32> = (0..model.num_quant_layers())
            .map(|i| [4u32, 8][i % 2])
            .collect();
        let w = reference_workload(&model, &bits);
        let lpa = execute(Design::Lpa, &cfg, &w);
        let ant = execute(Design::Ant, &cfg, &w);
        let af = execute(Design::AdaptivFloat, &cfg, &w);
        assert!(lpa.cycles < ant.cycles, "{name}: LPA must beat ANT");
        assert!(lpa.cycles < af.cycles, "{name}: LPA must beat AdaptivFloat");
        assert_eq!(lpa.macs, ant.macs, "{name}: same workload, same MACs");
    }
}
