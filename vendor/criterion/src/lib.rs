//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's benches: `Criterion::bench_function`, `Bencher::iter`,
//! `black_box`, `criterion_group!` and `criterion_main!`.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed in
//! batches until ~`CRITERION_TARGET_MS` (default 300 ms) of samples are
//! collected; the mean ns/iteration is printed. No statistics beyond the
//! mean, no plots, no baselines — just honest wall-clock numbers suitable
//! for coarse regression tracking.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            ns_per_iter: f64::NAN,
            target,
        }
    }

    /// Times `f`, storing mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and batch-size calibration.
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (self.target.as_nanos() / 20 / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let deadline = Instant::now() + self.target;
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += t.elapsed();
            iters += batch;
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// Benchmark registry/driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.target);
        f(&mut b);
        if b.ns_per_iter.is_finite() {
            println!("{name:<40} {:>14.1} ns/iter", b.ns_per_iter);
        } else {
            println!("{name:<40} (no measurement: Bencher::iter was not called)");
        }
        self
    }
}

/// Groups benchmark functions under one callable (mirror of criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
