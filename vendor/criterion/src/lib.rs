//! Offline stand-in for the subset of the `criterion` API used by this
//! workspace's benches: `Criterion::bench_function`, `Bencher::iter`,
//! `black_box`, `criterion_group!` and `criterion_main!`.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed in
//! batches until ~`CRITERION_TARGET_MS` (default 300 ms) of samples are
//! collected. Each batch yields one ns/iteration sample; the mean plus the
//! p50/p99 sample percentiles are printed and retrievable through
//! [`Bencher::stats`] / [`BenchStats::from_ns_samples`], so bench binaries
//! can report tail latency in their JSON artifacts. No plots, no baselines
//! — just honest wall-clock numbers suitable for coarse regression
//! tracking.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Summary of one benchmark's per-batch ns/iteration samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchStats {
    /// Mean ns per iteration over all timed iterations.
    pub mean_ns: f64,
    /// Median of the per-batch ns/iteration samples.
    pub p50_ns: f64,
    /// 99th percentile of the per-batch ns/iteration samples.
    pub p99_ns: f64,
    /// Number of per-batch samples behind the percentiles.
    pub samples: usize,
}

impl BenchStats {
    /// Builds stats from raw per-batch `(elapsed, iters)` samples.
    /// Returns `None` when no samples were collected.
    fn from_batches(batches: &[(Duration, u64)]) -> Option<Self> {
        if batches.is_empty() {
            return None;
        }
        let total_ns: f64 = batches.iter().map(|(d, _)| d.as_nanos() as f64).sum();
        let total_iters: f64 = batches.iter().map(|(_, i)| *i as f64).sum();
        let mut per_iter: Vec<f64> = batches
            .iter()
            .map(|(d, i)| d.as_nanos() as f64 / (*i).max(1) as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        Some(BenchStats {
            mean_ns: total_ns / total_iters.max(1.0),
            p50_ns: percentile(&per_iter, 50.0),
            p99_ns: percentile(&per_iter, 99.0),
            samples: per_iter.len(),
        })
    }

    /// Summarizes an arbitrary set of ns samples (helper for bench
    /// binaries that do their own timing but want consistent tails).
    pub fn from_ns_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Some(BenchStats {
            mean_ns: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ns: percentile(&sorted, 50.0),
            p99_ns: percentile(&sorted, 99.0),
            samples: sorted.len(),
        })
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (monotone in `q`).
///
/// Intentionally duplicates `serve::stats::percentile`: the vendored stub
/// must stay dependency-free (and nothing in the workspace may depend on
/// a vendor crate for library code), so the two copies cannot share a
/// definition. Keep the rank rule (nearest-rank, ceil) in sync with that
/// one so "p99" means the same thing in every JSON artifact.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0);
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Per-benchmark timing driver.
pub struct Bencher {
    stats: Option<BenchStats>,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Bencher {
            stats: None,
            target,
        }
    }

    /// Times `f`, collecting per-batch ns/iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup and batch-size calibration.
        let t0 = Instant::now();
        black_box(f());
        let one = t0.elapsed().max(Duration::from_nanos(1));
        // Aim for ~64 batches over the target interval so the percentile
        // estimates have a sample set behind them.
        let batch = (self.target.as_nanos() / 64 / one.as_nanos()).clamp(1, 1_000_000) as u64;
        let deadline = Instant::now() + self.target;
        let mut batches: Vec<(Duration, u64)> = Vec::new();
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            batches.push((t.elapsed(), batch));
        }
        self.stats = BenchStats::from_batches(&batches);
    }

    /// The stats measured by the last [`Bencher::iter`] call.
    pub fn stats(&self) -> Option<BenchStats> {
        self.stats
    }
}

/// Benchmark registry/driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its mean and p50/p99 time per
    /// iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.target);
        f(&mut b);
        match b.stats {
            Some(s) => {
                println!(
                    "{name:<40} {:>13.1} ns/iter  (p50 {:>13.1}, p99 {:>13.1}, {} samples)",
                    s.mean_ns, s.p50_ns, s.p99_ns, s.samples
                );
            }
            None => println!("{name:<40} (no measurement: Bencher::iter was not called)"),
        }
        self
    }
}

/// Groups benchmark functions under one callable (mirror of criterion's).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_monotone_and_exact_on_ranks() {
        let sorted: Vec<f64> = (1..=200).map(f64::from).collect();
        assert_eq!(percentile(&sorted, 50.0), 100.0);
        assert_eq!(percentile(&sorted, 99.0), 198.0);
        let mut prev = 0.0;
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let p = percentile(&sorted, q);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn bench_stats_capture_mean_and_tails() {
        let s = BenchStats::from_ns_samples(&[10.0, 20.0, 30.0, 40.0, 1000.0]).unwrap();
        assert_eq!(s.samples, 5);
        assert_eq!(s.p50_ns, 30.0);
        assert_eq!(s.p99_ns, 1000.0);
        assert!((s.mean_ns - 220.0).abs() < 1e-9);
        assert!(BenchStats::from_ns_samples(&[]).is_none());
    }

    #[test]
    fn bencher_records_stats() {
        let mut b = Bencher::new(Duration::from_millis(20));
        b.iter(|| black_box((0..100).sum::<u64>()));
        let s = b.stats().expect("stats recorded");
        assert!(s.mean_ns > 0.0);
        assert!(s.p50_ns <= s.p99_ns);
        assert!(s.samples >= 1);
    }
}
