//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec()`]: a fixed length or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length is drawn from `size` and whose elements
/// are drawn from `element` (mirror of `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.below(self.size.lo, self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
