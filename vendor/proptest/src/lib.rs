//! Offline stand-in for the subset of the `proptest` API used by this
//! workspace (the build environment has no access to crates.io).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with `arg in strategy` bindings,
//! * [`Strategy`](strategy::Strategy) with `prop_map`, implemented for
//!   numeric `Range`/`RangeInclusive`, tuples (≤ 6), [`Just`](strategy::Just)
//!   and unions,
//! * `prop::collection::vec`, `prop::bool::ANY`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`].
//!
//! Semantics: random testing without shrinking. Each test runs
//! `PROPTEST_CASES` cases (default 64) from a per-test deterministic seed.
//! Failures report the stringified condition but not a minimized input.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Module mirror of `proptest::bool`.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy type for arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Arbitrary boolean strategy (mirror of `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The `prop` module re-exports, as `proptest::prelude::prop` provides.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// Everything a proptest file normally imports.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running many sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = ::std::env::var("PROPTEST_CASES")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(64);
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut ran = 0u32;
                let mut attempts = 0u32;
                while ran < cases {
                    attempts += 1;
                    assert!(
                        attempts < cases.saturating_mul(20).max(1000),
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed: {}", stringify!($name), msg)
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{:?} == {:?}",
                a, b
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between homogeneous strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}
