//! Deterministic test RNG and case-level error type.

/// Outcome signal a proptest case body can raise.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; draw a new one.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// The RNG strategies sample from: xoshiro256**, seeded deterministically
/// per test (from the test's name), overridable with `PROPTEST_SEED`.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A deterministic RNG whose stream depends on `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_D00D);
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut h);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
