//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no shrinking tree; a strategy is just a
/// deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among homogeneous strategies (built by `prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(0, self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64();
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.unit_f64() * (hi - lo)) as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+ );)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
