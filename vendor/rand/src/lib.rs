//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace (the build environment has no access to crates.io).
//!
//! Provides [`RngCore`], [`Rng`] (`gen_range`, `gen_bool`, `gen`) and
//! [`SeedableRng`] with the same call signatures as `rand` 0.8. The
//! statistical quality is that of splitmix-seeded xoshiro-style generators —
//! more than enough for the deterministic synthetic data this repo needs.
//! Streams are *not* bit-compatible with upstream `rand`; nothing in the
//! repo depends on upstream streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A value that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng);
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range in gen_range");
                let u = unit_f64(rng);
                (lo + u * (hi - lo)) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self) < p
    }

    /// Uniform `f64` in `[0, 1)` (stand-in for `gen::<f64>()`).
    fn gen_f64(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64(&mut state);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The splitmix64 sequence (public so sibling stubs can reuse it).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.0)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Sm(1);
        for _ in 0..1000 {
            let a = r.gen_range(2..=8i64);
            assert!((2..=8).contains(&a));
            let b = r.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&b));
            let c = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&c));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Sm(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
