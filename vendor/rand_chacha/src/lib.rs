//! Offline stand-in for `rand_chacha`. The name and API match the real
//! crate (only `ChaCha8Rng` is used by this workspace); the internal
//! generator is xoshiro256** — deterministic, fast, and of high statistical
//! quality, though its stream differs from real ChaCha8. Nothing in the
//! workspace depends on the upstream stream, only on seed-determinism.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256** under the ChaCha8 name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // Avoid the all-zero state, which is a fixed point of xoshiro.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        let mut rng = ChaCha8Rng { s };
        // Warm up to decorrelate low-entropy seeds.
        for _ in 0..8 {
            rng.next_u64();
        }
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bits_look_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += r.next_u64().count_ones();
        }
        let frac = f64::from(ones) / (1000.0 * 64.0);
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
