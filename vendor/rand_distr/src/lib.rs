//! Offline stand-in for the subset of `rand_distr` used by this workspace:
//! the [`Normal`] distribution and the [`Distribution`] trait. Sampling
//! uses the Marsaglia polar method (exact Gaussian, not an approximation).

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};
use std::fmt;

/// Types that can sample values of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Standard deviation was negative or non-finite.
    BadVariance,
    /// Mean was non-finite.
    MeanTooSmall,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::BadVariance => f.write_str("standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => f.write_str("mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution with the `rand_distr::Normal` constructor API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution `N(mean, std_dev²)`.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] for non-finite parameters or negative
    /// `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; one of the pair is discarded to keep the
        // distribution stateless (determinism only depends on the stream).
        loop {
            let u = rng.gen_range(-1.0f64..1.0);
            let v = rng.gen_range(-1.0f64..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            rand::splitmix64(&mut self.0)
        }
    }
    impl SeedableRng for Sm {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Sm(u64::from_le_bytes(seed))
        }
    }

    #[test]
    fn moments_are_close() {
        let n = Normal::new(1.0, 2.0).unwrap();
        let mut rng = Sm::seed_from_u64(5);
        let xs: Vec<f64> = (0..20000).map(|_| n.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn validates_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }
}
