//! # lp-repro
//!
//! Umbrella crate for the Rust reproduction of *"Algorithm-Hardware
//! Co-Design of Distribution-Aware Logarithmic-Posit Encodings for Efficient
//! DNN Inference"* (DAC 2024).
//!
//! Re-exports the four subsystem crates:
//!
//! * [`lp`] — the Logarithmic Posit number format and baseline formats
//! * [`dnn`] — the DNN inference substrate (tensors, models, data)
//! * [`lpq`] — the genetic-algorithm quantization framework
//! * [`lpa`] — the accelerator model (PEs, systolic array, cost model)
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

#![forbid(unsafe_code)]

pub use dnn;
pub use lp;
pub use lpa;
pub use lpq;
