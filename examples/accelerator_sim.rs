//! Simulate DNN inference on the LPA accelerator and its baselines:
//! cycle-level latency, throughput, compute density, and energy.
//!
//! Run with: `cargo run --release --example accelerator_sim`

use dnn::models;
use lpa::sim::{compute_density_tops_mm2, execute, reference_workload};
use lpa::systolic::ArrayConfig;
use lpa::Design;

fn main() {
    let model = models::resnet50_like();
    let cfg = ArrayConfig::default();
    println!(
        "workload: {} at ImageNet scale on an {}x{} weight-stationary array @ {:.1} GHz\n",
        model.name(),
        cfg.rows,
        cfg.cols,
        cfg.freq_hz / 1e9
    );

    // A mixed-precision allocation like LPQ produces: 4-bit body, 8-bit
    // stem/head.
    let layers = model.num_quant_layers();
    let bits: Vec<u32> = (0..layers)
        .map(|i| if i == 0 || i == layers - 1 { 8 } else { 4 })
        .collect();
    let workload = reference_workload(&model, &bits);
    let macs: u64 = workload.iter().map(|g| g.macs()).sum();
    println!(
        "total MACs: {:.2}G across {} layers\n",
        macs as f64 / 1e9,
        workload.len()
    );

    println!(
        "{:<14} {:>12} {:>10} {:>14} {:>12} {:>14}",
        "design", "latency(ms)", "GOPS", "TOPS/mm^2", "energy(mJ)", "GOPS/W"
    );
    for design in [
        Design::Lpa,
        Design::Ant,
        Design::BitFusion,
        Design::AdaptivFloat,
        Design::PositPe,
    ] {
        let r = execute(design, &cfg, &workload);
        println!(
            "{:<14} {:>12.3} {:>10.1} {:>14.2} {:>12.2} {:>14.1}",
            design.name(),
            r.latency_s * 1e3,
            r.gops,
            compute_density_tops_mm2(design, &cfg, &r),
            r.energy_j * 1e3,
            r.gops_per_watt
        );
    }
    println!();
    println!("LPA keeps 8x8 behavior at every precision by packing narrow weights");
    println!("into PEs (MODE-A/B/C); fusion designs degrade to 8x4 / 8x2 at 8 bits.");
}
