//! Peek inside the LPA datapath: pack LP weights into a buffer word,
//! decode them through the hardware bit-path, and run a MAC through the
//! MODE-B PE exactly as the systolic array would.
//!
//! Run with: `cargo run --release --example bit_level_pe`

use lp::format::LpParams;
use lpa::bits::{pack_lanes, unpack_lanes};
use lpa::decode::{decode_packed, DecodedOperand};
use lpa::pe::{LpPe, PartialSum, PeMode};

fn main() -> Result<(), lp::LpError> {
    // Two 4-bit LP weights for one MODE-B PE.
    let fmt = LpParams::new(4, 1, 3, 0.0)?;
    let w0 = 1.5f64;
    let w1 = -0.5f64;
    let lane0 = fmt.encode(w0).bits() as u8;
    let lane1 = fmt.encode(w1).bits() as u8;
    let word = pack_lanes(&[lane0, lane1], PeMode::B);
    println!("weights {w0} and {w1} pack into buffer word {word:#010b}");
    println!("  lanes: {:?}", unpack_lanes(word, PeMode::B));

    // The unified decoder: per-lane two's complement, regime LZD, ulfx
    // extraction — one call, hardware-step faithful.
    let decoded = decode_packed(word, PeMode::B, &fmt);
    for (i, d) in decoded.iter().enumerate() {
        println!(
            "  lane {i}: sign={} scale_q8={} → value {:.4}",
            d.negative,
            d.scale_q8,
            d.value()
        );
    }

    // MAC: both weights share one eastbound activation. The reference is
    // the product of the *quantized* weights (1.5 rounds to 2.0 in this
    // narrow format) with the activation.
    let act = 2.0f64;
    let qw = [fmt.quantize(w0), fmt.quantize(w1)];
    let pe = LpPe::new(PeMode::B, decoded);
    let mut psums = vec![PartialSum::ZERO; 2];
    pe.mac(DecodedOperand::from_value(act), &mut psums);
    println!("after MAC with activation {act} (quantized weights {qw:?}):");
    for (i, (p, exact)) in psums.iter().zip([qw[0] * act, qw[1] * act]).enumerate() {
        println!(
            "  lane {i}: partial sum {:.4} (exact {:.4}, log-linear converter error {:+.4})",
            p.value(),
            exact,
            p.value() - exact
        );
    }
    Ok(())
}
