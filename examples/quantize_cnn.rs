//! End-to-end LPQ: quantize the ResNet-18 analogue post-training with the
//! genetic search and evaluate deployment accuracy.
//!
//! Run with: `cargo run --release --example quantize_cnn`
//! (set `LPQ_PRESET=paper` for the full search budget).

use dnn::{data, models};
use lpq::search::{Lpq, LpqConfig};

fn main() {
    let model = models::resnet18_like();
    println!(
        "model: {} ({} weighted layers, {} params, FP32 baseline {:.2})",
        model.name(),
        model.num_quant_layers(),
        model.num_params(),
        model.baseline_top1()
    );

    let cfg = LpqConfig::from_env();
    println!(
        "LPQ search: K={} P={} C={} B={} ({} calibration images)",
        cfg.population, cfg.passes, cfg.cycles, cfg.block_size, cfg.calib_size
    );
    let result = Lpq::new(&model, cfg).run();
    println!(
        "searched {} candidates; avg weight bits {:.2}, activation bits {:.2}",
        result.evaluations, result.avg_weight_bits, result.avg_activation_bits
    );
    println!(
        "per-layer weight bits: {:?}",
        result.best.layers.iter().map(|l| l.n).collect::<Vec<_>>()
    );
    println!(
        "model size: {:.3} MB ({:.1}x compression vs FP32)",
        result.model_size_mb,
        32.0 / result.avg_weight_bits
    );

    // Deployment evaluation: weights + activations quantized, accuracy
    // measured as teacher agreement on the margin-filtered test set.
    let test = data::test_set(&model);
    let teacher = data::predictions(&model, &test);
    let acc = data::quantized_accuracy(&model, &result.scheme(), &test, &teacher);
    println!(
        "top-1: {:.2} (baseline {:.2}, drop {:.2})",
        acc,
        model.baseline_top1(),
        model.baseline_top1() - acc
    );
}
