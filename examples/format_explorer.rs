//! Compare number formats on a DNN-like weight tensor: RMSE at matched
//! bit-widths and accuracy profiles — a miniature of the paper's Figs.
//! 1(b) and 5(b).
//!
//! Run with: `cargo run --release --example format_explorer`

use dnn::models;
use lp::accuracy::{accuracy_profile, rmse};
use lp::quantizer::{fit_quantizer, FormatKind};

fn main() -> Result<(), lp::LpError> {
    // A real layer from the zoo: heavy-tailed transformer projection.
    let model = models::vit_b_like();
    let weights = model.layer_weights();
    let layer = weights[10];
    println!(
        "layer tensor: {} weights, max |w| = {:.4}\n",
        layer.len(),
        layer.iter().map(|x| x.abs()).fold(0.0f32, f32::max)
    );

    println!("RMSE by format and bit-width (per-tensor fitted parameters):");
    println!(
        "{:<14} {:>12} {:>12} {:>12}",
        "format", "4-bit", "6-bit", "8-bit"
    );
    for kind in FormatKind::ALL {
        let mut row = format!("{:<14}", kind.to_string());
        for bits in [4u32, 6, 8] {
            let q = fit_quantizer(kind, bits, layer)?;
            let mut quantized = layer.to_vec();
            q.quantize_slice(&mut quantized);
            row.push_str(&format!(" {:>12.6}", rmse(layer, &quantized)));
        }
        println!("{row}");
    }

    // Accuracy profile comparison at 8 bits.
    println!("\ndecimal-accuracy profiles over 2^-10..2^10 (worst case per band):");
    let lp = fit_quantizer(FormatKind::Lp, 8, layer)?;
    let af = fit_quantizer(FormatKind::AdaptivFloat, 8, layer)?;
    for (name, q) in [("LP", &lp), ("AdaptivFloat", &af)] {
        let prof = accuracy_profile(|v| q.quantize(v), -10.0, 10.0, 10, 16);
        let line: Vec<String> = prof
            .iter()
            .map(|p| format!("{:.1}", p.decimal_accuracy.max(0.0)))
            .collect();
        println!("{name:<14} [{}]", line.join(", "));
    }
    println!("\nLP is tapered (peak where the data lives); AdaptivFloat is flat.");
    Ok(())
}
