//! Quickstart: the Logarithmic Posit format in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use lp::accuracy::decimal_accuracy;
use lp::format::LpParams;

fn main() -> Result<(), lp::LpError> {
    // An LP format is ⟨n, es, rs, sf⟩: total bits, exponent size, regime
    // cap, and a continuous scale-factor bias.
    let p = LpParams::new(8, 2, 3, 0.0)?;
    println!("format: {p}");
    println!("dynamic range: [{:.3e}, {:.3e}]", p.min_pos(), p.max_pos());

    // Encode/decode round trip. Every non-zero LP value is ±2^(scale).
    let w = p.encode(0.75);
    println!(
        "0.75 encodes to {:#010b} and decodes to {}",
        w.bits(),
        p.decode(w)
    );

    // Tapered accuracy: values near the taper center round more precisely
    // than values near the extremes.
    for v in [1.1, 17.3, 1900.0] {
        let q = p.quantize(v);
        println!(
            "quantize({v:>7}) = {q:<22.6} ({:.2} decimal digits)",
            decimal_accuracy(q, v)
        );
    }

    // The scale factor repositions the accuracy peak: fit it to data.
    let tensor: Vec<f32> = (0..64).map(|i| 0.01 * ((i as f32 * 0.7).sin())).collect();
    let sf = p.fit_sf_saturating(&tensor);
    let fitted = p.with_sf(sf);
    println!("fitted scale factor for ~0.01-magnitude data: {sf:.2}");
    let v = 0.008_f64;
    println!(
        "quantize(0.008): unfitted {:.6} vs fitted {:.6}",
        p.quantize(v),
        fitted.quantize(v)
    );

    // Mixed-precision: the same value at 4 and 2 bits.
    let p4 = LpParams::new(4, 1, 3, 0.0)?;
    let p2 = LpParams::new(2, 0, 1, 0.0)?;
    println!(
        "0.75 at 4 bits: {}, at 2 bits: {}",
        p4.quantize(0.75),
        p2.quantize(0.75)
    );
    Ok(())
}
